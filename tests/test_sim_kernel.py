"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator, ms, seconds, to_ms, to_seconds, us
from repro.tinyos.timer import Timer


class TestUnits:
    def test_seconds(self):
        assert seconds(1) == 1_000_000
        assert seconds(0.5) == 500_000

    def test_ms(self):
        assert ms(1) == 1_000
        assert ms(2.5) == 2_500

    def test_us_rounds(self):
        assert us(1.4) == 1
        assert us(1.6) == 2

    def test_round_trips(self):
        assert to_seconds(seconds(3.25)) == 3.25
        assert to_ms(ms(42)) == 42.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(300, order.append, "c")
        sim.schedule(100, order.append, "a")
        sim.schedule(200, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_tick_fires_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(50, order.append, tag)
        sim.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1234, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [1234]
        assert sim.now == 1234

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, 1)
        handle.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run_until_idle()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_call_now_runs_at_current_tick(self):
        sim = Simulator()
        times = []
        sim.schedule(10, lambda: sim.call_now(lambda: times.append(sim.now)))
        sim.run_until_idle()
        assert times == [10]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(5, chain, depth + 1)

        sim.schedule(0, chain, 0)
        sim.run_until_idle()
        assert seen == [0, 1, 2, 3]


class TestRunLimits:
    def test_run_duration_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "in")
        sim.schedule(5000, fired.append, "out")
        sim.run(duration=1000)
        assert fired == ["in"]
        assert sim.now == 1000  # clock advanced to the deadline
        sim.run_until_idle()
        assert fired == ["in", "out"]

    def test_run_until_absolute(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(until=400)
        assert sim.now == 400

    def test_duration_and_until_exclusive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run(duration=10, until=20)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_during_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, sim.stop)
        sim.schedule(30, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_pending_events_counts_uncancelled(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        handle = sim.schedule(20, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_pending_events_counter_tracks_lifecycle(self):
        sim = Simulator()
        assert sim.pending_events == 0
        first = sim.schedule(10, lambda: None)
        second = sim.schedule(20, lambda: None)
        assert sim.pending_events == 2
        sim.run(duration=15)
        assert sim.pending_events == 1
        second.cancel()
        second.cancel()  # repeat cancels must not double-decrement
        assert sim.pending_events == 0
        first.cancel()  # cancelling an already-fired event is a no-op
        assert sim.pending_events == 0
        sim.run_until_idle()
        assert sim.pending_events == 0


class TestMaxEventsClock:
    """Regression: a run cut short by max_events must not jump the clock to
    the deadline while earlier events are still queued (the clock would then
    move backwards on the next step)."""

    def test_max_events_leaves_clock_at_last_fired_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, fired.append, "b")
        sim.run(duration=1000, max_events=1)
        assert fired == ["a"]
        assert sim.now == 10  # NOT 1000: the queue was not drained
        sim.step()
        assert sim.now == 20  # monotonic, no backwards jump
        sim.run(duration=980)
        assert sim.now == 1000  # drained: now the deadline is honoured

    def test_drained_run_still_advances_to_deadline(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(duration=1000, max_events=50)
        assert sim.now == 1000  # queue drained well before max_events

    def test_stop_still_leaves_clock_at_current_event(self):
        sim = Simulator()
        sim.schedule(10, sim.stop)
        sim.schedule(500, lambda: None)
        sim.run(duration=1000)
        assert sim.now == 10

    def test_raising_callback_does_not_jump_clock_over_queued_events(self):
        sim = Simulator()
        fired = []

        def boom():
            raise RuntimeError("agent crashed")

        sim.schedule(10, boom)
        sim.schedule(20, fired.append, "later")
        with pytest.raises(RuntimeError):
            sim.run(duration=1000)
        assert sim.now == 10  # not fast-forwarded past the t=20 event
        sim.step()
        assert sim.now == 20 and fired == ["later"]  # monotonic recovery


class TestQueueHygiene:
    def test_stats_shape(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        handle = sim.schedule(20, lambda: None)
        handle.cancel()
        stats = sim.stats()
        assert stats["queued"] == 2
        assert stats["live"] == 1
        assert stats["dead"] == 1
        assert stats["compactions"] == 0
        assert stats["events_fired"] == 0
        sim.run_until_idle()
        stats = sim.stats()
        assert stats["queued"] == 0
        assert stats["dead"] == 0
        assert stats["events_fired"] == 1

    def test_compaction_purges_dead_majority(self):
        sim = Simulator()
        handles = [sim.schedule(1000 + i, lambda: None) for i in range(100)]
        for handle in handles[:60]:
            handle.cancel()
        stats = sim.stats()
        assert stats["compactions"] >= 1
        assert stats["dead"] < stats["queued"]  # the heap was scrubbed
        assert stats["live"] == 40
        sim.run_until_idle()
        assert sim.events_fired == 40  # survivors all fired exactly once

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        sim.COMPACT_MIN_QUEUE = 4  # force compaction at toy sizes
        order = []
        handles = [
            sim.schedule(100 - i, order.append, 100 - i) for i in range(20)
        ]
        for index, handle in enumerate(handles):
            if index % 3:  # cancel two thirds: a clear dead majority
                handle.cancel()
        sim.run_until_idle()
        assert order == sorted(order)
        assert sim.compactions >= 1
        assert len(order) == 7

    def test_recurring_event_reuses_one_handle(self):
        sim = Simulator()
        ticks = []
        sim.every(1_000, lambda: ticks.append(sim.now))
        sim.run(duration=5_500)
        assert ticks == [1_000, 2_000, 3_000, 4_000, 5_000]
        assert sim.handle_reuses == len(ticks)

    def test_periodic_timer_reuses_one_handle(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start_periodic(100)
        sim.run(duration=1_050)
        assert timer.fired_count == 10
        assert sim.handle_reuses == 10

    def test_reschedule_rejects_unfired_or_cancelled_handles(self):
        sim = Simulator()
        pending = sim.schedule(10, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(pending, 5)  # still queued
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.reschedule(pending, -1)  # negative delay
        pending.cancel()
        with pytest.raises(SimulationError):
            sim.reschedule(pending, 5)  # cancelled after firing


# ----------------------------------------------------------------------
# Property: the optimized kernel fires in exactly the order a naive one does
# ----------------------------------------------------------------------
class NaiveSimulator:
    """The obvious reference implementation: a plain list scanned for the
    (time, seq) minimum, no handle reuse, no compaction."""

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._events = []  # [time, seq, fn, cancelled]

    def schedule(self, delay, fn):
        entry = [self.now + int(delay), self._seq, fn, False]
        self._seq += 1
        self._events.append(entry)
        return entry

    def run(self, duration):
        deadline = self.now + int(duration)
        while True:
            live = [entry for entry in self._events if not entry[3]]
            if not live:
                break
            entry = min(live, key=lambda e: (e[0], e[1]))
            if entry[0] > deadline:
                break
            self._events.remove(entry)
            self.now = entry[0]
            entry[2]()
        self.now = deadline


class NaiveTimer:
    """Mirrors :class:`repro.tinyos.timer.Timer` semantics with no reuse."""

    def __init__(self, sim, callback):
        self.sim = sim
        self.callback = callback
        self._pending = None
        self._period = None
        self._remaining = None

    def start_one_shot(self, delay):
        self.stop()
        self._period = None
        self._pending = self.sim.schedule(delay, self._fire)

    def start_periodic(self, period):
        self.stop()
        self._period = int(period)
        self._pending = self.sim.schedule(period, self._fire)

    def stop(self):
        self._remaining = None
        if self._pending is not None:
            self._pending[3] = True
            self._pending = None

    def pause(self):
        if self._pending is None or self._pending[3]:
            return
        self._remaining = max(0, self._pending[0] - self.sim.now)
        self._pending[3] = True
        self._pending = None

    def resume(self):
        if self._remaining is None:
            return
        delay = self._remaining
        self._remaining = None
        self._pending = self.sim.schedule(delay, self._fire)

    def _fire(self):
        self._pending = None
        if self._period is not None:
            self._pending = self.sim.schedule(self._period, self._fire)
        self.callback()


kernel_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("periodic"), st.integers(min_value=40, max_value=300)),
        st.tuples(st.just("stop"), st.integers(min_value=0, max_value=10)),
        st.tuples(
            st.just("restart"),
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=400),
        ),
        st.tuples(st.just("pause"), st.integers(min_value=0, max_value=10)),
        st.tuples(st.just("resume"), st.integers(min_value=0, max_value=10)),
        st.tuples(st.just("advance"), st.integers(min_value=0, max_value=500)),
    ),
    min_size=0,
    max_size=60,
)


class TestOptimizedKernelEqualsNaive:
    @given(kernel_ops)
    @settings(max_examples=120, deadline=None)
    def test_firing_order_matches_reference(self, operations):
        sim = Simulator()
        sim.COMPACT_MIN_QUEUE = 4  # make compaction part of every example
        naive = NaiveSimulator()
        logs = ([], [])
        handles: list = [[], []]  # plain scheduled events per side
        timers: list = [[], []]  # Timer / NaiveTimer per side
        sides = (
            (sim, logs[0], handles[0], timers[0], Timer),
            (naive, logs[1], handles[1], timers[1], NaiveTimer),
        )

        def recorder(kernel, side_log, label):
            return lambda: side_log.append((kernel.now, label))

        for op in operations:
            for kernel, log, scheduled, side_timers, timer_cls in sides:
                if op[0] == "schedule":
                    label = f"s{len(scheduled)}"
                    scheduled.append(
                        kernel.schedule(op[1], recorder(kernel, log, label))
                    )
                elif op[0] == "cancel" and scheduled:
                    target = scheduled[op[1] % len(scheduled)]
                    if isinstance(target, list):
                        target[3] = True  # naive cancel
                    else:
                        target.cancel()
                elif op[0] == "periodic":
                    label = f"t{len(side_timers)}"
                    timer = timer_cls(kernel, recorder(kernel, log, label))
                    timer.start_periodic(op[1])
                    side_timers.append(timer)
                elif op[0] == "stop" and side_timers:
                    side_timers[op[1] % len(side_timers)].stop()
                elif op[0] == "restart" and side_timers:
                    side_timers[op[1] % len(side_timers)].start_one_shot(op[2])
                elif op[0] == "pause" and side_timers:
                    side_timers[op[1] % len(side_timers)].pause()
                elif op[0] == "resume" and side_timers:
                    side_timers[op[1] % len(side_timers)].resume()
                elif op[0] == "advance":
                    kernel.run(op[1])

        for kernel, *_ in sides:
            kernel.run(2_000)

        assert logs[0] == logs[1]
        assert sim.now == naive.now


class TestRandomStreams:
    def test_streams_are_deterministic_across_runs(self):
        a = Simulator(seed=7).rng("channel").random()
        b = Simulator(seed=7).rng("channel").random()
        assert a == b

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=7)
        assert sim.rng("a").random() != sim.rng("b").random()

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_same_name_returns_same_stream(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")
