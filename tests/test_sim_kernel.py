"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, ms, seconds, to_ms, to_seconds, us


class TestUnits:
    def test_seconds(self):
        assert seconds(1) == 1_000_000
        assert seconds(0.5) == 500_000

    def test_ms(self):
        assert ms(1) == 1_000
        assert ms(2.5) == 2_500

    def test_us_rounds(self):
        assert us(1.4) == 1
        assert us(1.6) == 2

    def test_round_trips(self):
        assert to_seconds(seconds(3.25)) == 3.25
        assert to_ms(ms(42)) == 42.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(300, order.append, "c")
        sim.schedule(100, order.append, "a")
        sim.schedule(200, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_tick_fires_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(50, order.append, tag)
        sim.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1234, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [1234]
        assert sim.now == 1234

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, 1)
        handle.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run_until_idle()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_call_now_runs_at_current_tick(self):
        sim = Simulator()
        times = []
        sim.schedule(10, lambda: sim.call_now(lambda: times.append(sim.now)))
        sim.run_until_idle()
        assert times == [10]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(5, chain, depth + 1)

        sim.schedule(0, chain, 0)
        sim.run_until_idle()
        assert seen == [0, 1, 2, 3]


class TestRunLimits:
    def test_run_duration_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "in")
        sim.schedule(5000, fired.append, "out")
        sim.run(duration=1000)
        assert fired == ["in"]
        assert sim.now == 1000  # clock advanced to the deadline
        sim.run_until_idle()
        assert fired == ["in", "out"]

    def test_run_until_absolute(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(until=400)
        assert sim.now == 400

    def test_duration_and_until_exclusive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run(duration=10, until=20)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_during_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, sim.stop)
        sim.schedule(30, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_pending_events_counts_uncancelled(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        handle = sim.schedule(20, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_pending_events_counter_tracks_lifecycle(self):
        sim = Simulator()
        assert sim.pending_events == 0
        first = sim.schedule(10, lambda: None)
        second = sim.schedule(20, lambda: None)
        assert sim.pending_events == 2
        sim.run(duration=15)
        assert sim.pending_events == 1
        second.cancel()
        second.cancel()  # repeat cancels must not double-decrement
        assert sim.pending_events == 0
        first.cancel()  # cancelling an already-fired event is a no-op
        assert sim.pending_events == 0
        sim.run_until_idle()
        assert sim.pending_events == 0


class TestRandomStreams:
    def test_streams_are_deterministic_across_runs(self):
        a = Simulator(seed=7).rng("channel").random()
        b = Simulator(seed=7).rng("channel").random()
        assert a == b

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=7)
        assert sim.rng("a").random() != sim.rng("b").random()

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_same_name_returns_same_stream(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")
