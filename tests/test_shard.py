"""Sharded field runtime: partition geometry, the parity contract, validation.

The load-bearing test here is inline-vs-multiprocess parity: the inline
driver runs every shard in one process through the *same* grant/replay
protocol the fork workers use, so equal counters prove the multiprocess
path adds no behavior — only parallelism.
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.spec import Scenario
from repro.shard import ShardedRunner, partition_topology
from repro.shard.partition import PartitionError
from repro.topology import ClusteredTopology, GridTopology

SEAM_SPEC = {
    "name": "seam-flood",
    "topology": {"kind": "grid", "width": 8, "height": 3},
    "workload": {"kind": "flood"},
    "duration_s": 2.0,
    "seed": 0,
    "spacing_m": 60.0,
    "shards": 2,
}


def _counters(result):
    """The behavior counters (everything timing-dependent stripped)."""
    drop = {"build_s", "wall_s", "events_per_s", "frames_per_s", "sim_x_real"}
    return {k: v for k, v in result.counters.items() if k not in drop}


# ---------------------------------------------------------------------------
# partitioning


def test_partition_covers_and_balances():
    topo = GridTopology(10, 4)
    part = partition_topology(topo, 2, spacing_m=60.0)
    sizes = [len(r) for r in part.regions]
    assert sum(sizes) == 40
    assert sizes == [20, 20]
    # every mote lands in exactly one region
    all_ids = [m for r in part.regions for m in r.mote_ids]
    assert len(all_ids) == len(set(all_ids)) == 40


def test_partition_is_deterministic():
    topo = ClusteredTopology(clusters=4, cluster_size=25, seed=3)
    a = partition_topology(topo, 4, spacing_m=40.0)
    b = partition_topology(topo, 4, spacing_m=40.0)
    assert [r.locations for r in a.regions] == [r.locations for r in b.regions]
    assert a.ghosts == b.ghosts


def test_ghosts_are_symmetric_and_audible():
    topo = GridTopology(8, 3)
    part = partition_topology(topo, 2, spacing_m=60.0)
    # a seam between adjacent 60 m columns must mirror motes both ways
    assert part.ghosts[0] and part.ghosts[1]
    assert 1 in part.seam_neighbors(0) and 0 in part.seam_neighbors(1)
    # mirrored ids keep their *global* identity
    for ghosts in part.ghosts.values():
        for entries in ghosts.values():
            for mote_id, loc in entries:
                assert part.topology.mote_id(loc) == mote_id


def test_region_topology_preserves_global_ids():
    topo = GridTopology(6, 2)
    part = partition_topology(topo, 2, spacing_m=60.0)
    base_dir = topo.directory()
    for region in part.regions:
        from repro.shard.partition import RegionTopology

        sub = RegionTopology(topo, region)
        for loc, mote_id in sub.directory().items():
            assert base_dir[loc] == mote_id


def test_partition_rejects_degenerate_requests():
    topo = GridTopology(2, 2)
    with pytest.raises(PartitionError):
        partition_topology(topo, 8, spacing_m=60.0)


# ---------------------------------------------------------------------------
# parity: inline == multiprocess, run-to-run stable


def test_inline_matches_multiprocess_bit_for_bit():
    scenario = Scenario.from_spec(SEAM_SPEC)
    inline = ShardedRunner(scenario, mode="inline").run()
    proc = ShardedRunner(scenario, mode="process").run()
    assert _counters(inline) == _counters(proc)
    # frames crossed the seams and the flood is spreading
    assert inline.counters["envelopes_in"] > 0
    assert inline.counters["coverage"] > 0


def test_sharded_run_is_stable_run_to_run():
    scenario = Scenario.from_spec(SEAM_SPEC)
    first = ShardedRunner(scenario, mode="inline").run()
    second = ShardedRunner(scenario, mode="inline").run()
    assert _counters(first) == _counters(second)


def test_scenario_run_delegates_to_sharded_runner():
    row = Scenario.from_spec(SEAM_SPEC).run()
    direct = ShardedRunner(Scenario.from_spec(SEAM_SPEC)).run()
    for key, value in _counters(direct).items():
        assert row[key] == value


# ---------------------------------------------------------------------------
# validation: what can't shard says so


def _reject(spec_overrides: dict, match: str):
    spec = dict(SEAM_SPEC, **spec_overrides)
    with pytest.raises(NetworkError, match=match):
        ShardedRunner(Scenario.from_spec(spec)).run()


def test_rejects_mobility():
    _reject(
        {
            "dynamics": {
                "mobility": {"model": "random_waypoint", "speed": [0.5, 2.0], "pause_s": 1.0},
                "mobile_fraction": 0.25,
                "tick_s": 1.0,
            }
        },
        "mobility",
    )


def test_rejects_adaptive_and_physical():
    _reject({"adaptive": True}, "adaptive")
    _reject({"physical": True}, "physical")


def test_rejects_non_shard_safe_workload():
    _reject({"workload": {"kind": "tracker"}}, "workload")


# ---------------------------------------------------------------------------
# the CI parity battery (slow): both builtin sharded scenarios at 4 shards


@pytest.mark.slow
@pytest.mark.parametrize("name", ["sharded-ribbon", "sharded-clusters"])
def test_builtin_sharded_scenarios_parity(name):
    scenario = Scenario.from_spec(name)
    assert scenario.shards == 4
    inline = ShardedRunner(scenario, mode="inline").run()
    proc = ShardedRunner(scenario, mode="process").run()
    assert _counters(inline) == _counters(proc)
    assert inline.counters["coverage"] > 0
