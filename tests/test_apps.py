"""Integration tests for the application agents (§5 case study and friends)."""

from repro.agilla.agent import AgentState
from repro.agilla.fields import StringField
from repro.apps import (
    FIREDETECTOR_FIGURE13,
    blink_agent,
    chaser,
    firedetector,
    firetracker,
    habitat_monitor,
    rout_agent,
    sampler,
    smove_agent,
)
from repro.agilla.assembler import assemble
from repro.location import Location
from repro.mote.environment import (
    ConstantField,
    Environment,
    FireField,
    MovingTargetField,
    waypoint_path,
)
from repro.mote.sensors import MAGNETOMETER, TEMPERATURE

from tests.util import corridor, grid, single_node


def tagged(net, at, tag):
    return [
        t
        for t in net.tuples_at(at)
        if t.arity and isinstance(t.fields[0], StringField) and t.fields[0].text == tag
    ]


class TestTesterAgents:
    def test_smove_agent_round_trip(self):
        net = grid()
        agent = net.inject(smove_agent(5, 1), at=(0, 0))
        assert net.run_until(
            lambda: any(
                e[0] == "arrival" and e[1] == agent.id
                for e in net.base_station.middleware.migration.events
            ),
            30.0,
        )

    def test_rout_agent_places_tuple(self):
        net = grid()
        agent = net.inject(rout_agent(3, 1), at=(0, 0))
        assert net.run_until(lambda: agent.state == AgentState.DEAD, 10.0)
        assert agent.condition == 1
        assert len(tagged(net, (3, 1), "")) == 0  # sanity: helper works
        values = [t for t in net.tuples_at((3, 1)) if t.arity == 1]
        assert any(str(t) == "<1>" for t in values)

    def test_blink_agent_toggles(self):
        net = single_node()
        net.inject(blink_agent(), at=(1, 1))
        net.run(3.5)
        history = net.middleware((1, 1)).mote.leds.history
        assert len(history) >= 3


class TestFireDetector:
    def test_figure13_verbatim_assembles_and_runs(self):
        env = Environment({TEMPERATURE: ConstantField(50)})
        net = single_node(environment=env)
        agent = net.inject(assemble(FIREDETECTOR_FIGURE13, name="fdt"), at=(1, 1))
        net.run(25.0)
        # No fire: still alive, cycling through sleep.
        assert agent.state in (AgentState.SLEEPING, AgentState.READY)

    def test_detector_spreads_across_network(self):
        net = corridor(4)
        net.inject(firedetector(), at=(1, 1))
        assert net.run_until(
            lambda: all(tagged(net, (x, 1), "fdt") for x in range(1, 5)), 60.0
        )
        # Exactly one claim tuple per node (dedup works).
        for x in range(1, 5):
            assert len(tagged(net, (x, 1), "fdt")) == 1

    def test_detector_raises_alarm_on_fire(self):
        env = Environment(
            {TEMPERATURE: FireField(Location(1, 1), ignition_time=0, burn_value=900)}
        )
        net = single_node(environment=env)
        # Tracker host is (1,1) itself so the rout is a loopback.
        agent = net.inject(firedetector(tracker_x=1, tracker_y=1, spread=False), at=(1, 1))
        assert net.run_until(lambda: agent.state == AgentState.DEAD, 30.0)
        assert tagged(net, (1, 1), "fir")


class TestFireTracker:
    def test_tracker_waits_then_clones_to_fire(self):
        # Fire at (3,1); detector there; tracker waiting at (1,1).
        env = Environment(
            {
                TEMPERATURE: FireField(
                    Location(3, 1), ignition_time=2_000_000, spread_rate=0.0,
                    max_radius=0.1,
                )
            }
        )
        net = corridor(3, environment=env)
        net.inject(firetracker(), at=(1, 1))
        net.inject(firedetector(tracker_x=1, tracker_y=1, spread=False), at=(3, 1))
        # The tracker should clone itself onto the burning node and light red.
        assert net.run_until(
            lambda: net.middleware((3, 1)).mote.leds.lit() == ["red"], 60.0
        )
        assert tagged(net, (3, 1), "ftk")
        # The alarm reached the base station.
        assert net.run_until(lambda: tagged(net, (0, 0), "alm"), 30.0)

    def test_perimeter_spreads_with_fire(self):
        env = Environment(
            {
                TEMPERATURE: FireField(
                    Location(3, 3), ignition_time=0, spread_rate=0.15, burn_value=900
                )
            }
        )
        net = grid(environment=env)
        net.inject(firetracker(), at=(3, 3))
        # Trackers should claim the burning node and spread to neighbors.
        assert net.run_until(
            lambda: sum(
                1
                for node in net.grid_nodes()
                if tagged(net, node.location, "ftk")
            )
            >= 4,
            90.0,
        )


class TestHabitatMonitor:
    def test_publishes_fresh_samples(self):
        env = Environment({2: ConstantField(321)})  # LIGHT = 2
        net = single_node(environment=env)
        net.inject(habitat_monitor(), at=(1, 1))
        assert net.run_until(lambda: tagged(net, (1, 1), "hab"), 10.0)
        # Old samples are retired: never more than one.
        net.run(10.0)
        assert len(tagged(net, (1, 1), "hab")) == 1

    def test_dies_on_fire_alert(self):
        net = single_node()
        agent = net.inject(habitat_monitor(), at=(1, 1))
        net.run(2.0)
        assert agent.state != AgentState.DEAD
        # A detector-style alert arrives:
        net.inject(
            assemble("pushn fir\nloc\npushc 2\nout\nhalt", name="det"), at=(1, 1)
        )
        assert net.run_until(lambda: agent.state == AgentState.DEAD, 10.0)


class TestIntruderTracking:
    def test_chaser_follows_target(self):
        path = waypoint_path([(1.0, 1.0), (4.0, 1.0)], speed=0.08)
        env = Environment(
            {MAGNETOMETER: MovingTargetField(path, peak=1000, reach=1.6)}
        )
        net = corridor(4, environment=env)
        for x in range(1, 5):
            net.inject(sampler(spread=False), at=(x, 1))
        net.run(2.0)
        agent = net.inject(chaser(), at=(1, 1))
        # The target reaches (4,1) after ~37 s; the chaser should end up there.

        def chaser_at_goal():
            return any(a.name == "chs" for a in net.agents_at((4, 1)))

        assert net.run_until(chaser_at_goal, 120.0)
        assert agent.hops >= 1 or any(
            a.name == "chs" for a in net.agents_at((4, 1))
        )
