"""The run-slice engine: O(slices) kernel events, bit-identical CPU timeline.

PR 5 replaced the Agilla engine's one-task-post-per-instruction execution
loop with bounded run-slices — up to ``slice_length`` instructions per kernel
event while the outcome stays ``CONTINUE``.  These tests pin the contract:

* fewer kernel events than instructions (the point of the refactor);
* the CPU busy horizon — and therefore everything timestamped downstream —
  is unchanged by how instructions are grouped into events;
* time-sensitive instructions suspend the batch and observe their *true*
  simulated time;
* instrumentation (``on_instruction``) forces per-instruction events so
  traces keep exact timestamps.
"""

from repro.agilla.assembler import assemble
from repro.agilla.isa import BY_NAME, NOW_PURE_OPCODES
from repro.agilla.params import AgillaParams
from repro.agilla.tracer import Tracer
from repro.network import GridNetwork


def _one_node(params: AgillaParams | None = None) -> GridNetwork:
    return GridNetwork(
        width=1, height=1, base_station=False, beacons=False, seed=0, params=params
    )


#: A compute-heavy loop: 60 iterations of pure stack work, then halt.
LOOP = """
    pushc 60
    TOP copy
    pushc 0
    ceq
    rjumpc DONE
    dec
    pushc TOP
    jump
    DONE pop
    halt
"""


class TestRunSlices:
    def test_agent_work_posts_fewer_events_than_instructions(self):
        net = _one_node()
        middleware = net.middleware((1, 1))
        events_before = net.sim.events_fired
        middleware.inject(assemble(LOOP, name="lp"))
        net.run(20.0)
        executed = middleware.engine.instructions_executed
        events = net.sim.events_fired - events_before
        assert executed > 200  # the loop actually ran
        # The per-instruction engine needed > 2 events per instruction
        # (completion callback + next dispatch task); slices need ~1/4.
        assert events < executed / 2

    def test_slice_grouping_does_not_move_the_cpu_timeline(self):
        """Grouping 1 vs 4 instructions per event must not move a single
        microsecond: ``putled`` timestamps its LED history with the true
        simulated time, so identical histories prove the busy horizon
        evolves identically however the slices are cut."""
        histories = []
        cycles = []
        for slice_length in (1, 4):
            net = _one_node(AgillaParams(slice_length=slice_length))
            middleware = net.middleware((1, 1))
            middleware.inject(
                assemble(
                    "pushc 8\npushc 1\nadd\npushc 15\nputled\n" * 3 + "halt",
                    name="tl",
                )
            )
            net.run(20.0)
            histories.append(middleware.mote.leds.history)
            cycles.append(middleware.mote.cpu.cycles_executed)
        assert histories[0] == histories[1]
        assert histories[0]  # putled actually ran
        assert cycles[0] == cycles[1]

    def test_time_sensitive_instruction_suspends_the_slice(self):
        net = _one_node()
        middleware = net.middleware((1, 1))
        # putled lands mid-slice (instruction 3 of 4): the batch must
        # suspend and resume so the LED history gets its true timestamp.
        middleware.inject(
            assemble("pushc 1\npushc 1\npushc 15\nputled\nhalt", name="ts")
        )
        net.run(10.0)
        assert middleware.engine.slice_suspensions >= 1

    def test_instrumented_engine_keeps_per_instruction_timestamps(self):
        net = _one_node()
        middleware = net.middleware((1, 1))
        with Tracer(middleware) as trace:
            middleware.inject(assemble(LOOP, name="tr"))
            net.run(20.0)
        times = [entry.time for entry in trace.entries]
        assert len(times) > 200
        # Strictly increasing: with the hook installed every instruction is
        # dispatched in its own kernel event at its own simulated time.
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_now_pure_set_excludes_the_clock_observers(self):
        for name in ("sense", "sleep", "putled", "halt", "smove", "rout"):
            assert BY_NAME[name].opcode not in NOW_PURE_OPCODES, name
        for name in ("pushc", "add", "jump", "out", "inp", "regrxn"):
            assert BY_NAME[name].opcode in NOW_PURE_OPCODES, name

    def test_round_robin_quantum_unchanged(self):
        """Two compute-heavy agents still interleave every slice_length
        instructions — the §3.2 context-switch quantum survives batching."""
        net = _one_node()
        middleware = net.middleware((1, 1))
        order = []
        middleware.engine.on_instruction = lambda agent, idef, cycles: order.append(
            agent.name
        )
        middleware.inject(assemble(LOOP, name="aaa"))
        middleware.inject(assemble(LOOP, name="bbb"))
        net.run(30.0)
        quantum = middleware.params.slice_length
        # Collapse the stream into runs: every full run is one slice long.
        runs = []
        for name in order:
            if runs and runs[-1][0] == name:
                runs[-1][1] += 1
            else:
                runs.append([name, 1])
        assert len(runs) > 10  # they really interleaved
        assert all(length <= quantum for _, length in runs)
        assert {name for name, _ in runs} == {"aaa", "bbb"}
