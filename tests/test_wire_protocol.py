"""Tests for the migration wire format and end-to-end ablation mode."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agilla.agent import Agent, AgentState
from repro.agilla.assembler import assemble
from repro.agilla.fields import LocationField, StringField, TypeWildcard, Value
from repro.agilla.fields import FieldType
from repro.agilla.params import AgillaParams
from repro.agilla.reactions import Reaction
from repro.agilla.tuples import make_template
from repro.agilla.wire import (
    CODE_CHUNK_BYTES,
    IncomingAgent,
    decode_ack,
    encode_ack,
    messages_from_image,
    serialize_agent,
)
from repro.location import Location
from repro.net import am
from repro.radio.frame import MAX_PAYLOAD

from tests.util import corridor


def loaded_agent(code_size=44):
    agent = Agent(0x0BEE, name="ldx")
    agent.pc = 17
    agent.condition = 1
    agent.stack = [Value(1), LocationField(Location(2, 3)), StringField("abc")]
    agent.heap = {0: Value(9), 5: LocationField(Location(7, 7))}
    template = make_template(StringField("fir"), TypeWildcard(FieldType.LOCATION))
    reactions = [Reaction(agent.id, template, 40)]
    code = bytes(range(code_size))
    return agent, code, reactions


def replay(messages, src=1):
    incoming = IncomingAgent(src, messages[0].payload)
    for message in messages:
        incoming.messages[message.seq] = message
        if message.seq != 0:
            incoming.accept(message.am_type, message.payload)
    return incoming


class TestSerializeRoundTrip:
    def test_strong_move_round_trips_everything(self):
        agent, code, reactions = loaded_agent()
        messages = serialize_agent(agent, "smove", Location(5, 1), code, reactions)
        incoming = replay(messages)
        assert incoming.complete
        image = incoming.build()
        assert image.agent_id == agent.id
        assert image.pc == agent.pc
        assert image.condition == agent.condition
        assert image.code == code
        assert image.stack == agent.stack
        assert image.heap == agent.heap
        assert image.reactions == [(40, reactions[0].template)]
        assert image.kind == "smove"
        assert image.final_dest == Location(5, 1)
        assert image.species == "ldx"

    def test_weak_move_ships_code_only(self):
        agent, code, reactions = loaded_agent()
        messages = serialize_agent(agent, "wmove", Location(5, 1), code, reactions)
        types = [m.am_type for m in messages]
        assert am.AM_MIGRATE_HEAP not in types
        assert am.AM_MIGRATE_STACK not in types
        assert am.AM_MIGRATE_RXN not in types
        image = replay(messages).build()
        assert image.stack == [] and image.heap == {}
        assert image.pc == 0
        assert image.is_weak

    def test_all_payloads_fit_tinyos_frames(self):
        agent, code, reactions = loaded_agent(code_size=200)
        for kind in ("smove", "wmove", "sclone", "wclone"):
            for message in serialize_agent(agent, kind, Location(5, 1), code, reactions):
                assert len(message.payload) <= MAX_PAYLOAD

    def test_minimum_two_data_messages(self):
        # Paper §3.2: "a migration requires two messages: one state and one
        # code" — plus our explicit commit.
        agent = Agent(1, name="min")
        messages = serialize_agent(agent, "smove", Location(2, 1), b"\x00", [])
        assert [m.am_type for m in messages] == [
            am.AM_MIGRATE_STATE,
            am.AM_MIGRATE_CODE,
            am.AM_MIGRATE_COMMIT,
        ]

    def test_sequence_numbers_are_contiguous(self):
        agent, code, reactions = loaded_agent(code_size=100)
        messages = serialize_agent(agent, "sclone", Location(5, 1), code, reactions)
        assert [m.seq for m in messages] == list(range(len(messages)))

    def test_out_of_order_and_duplicate_delivery(self):
        agent, code, reactions = loaded_agent()
        messages = serialize_agent(agent, "smove", Location(5, 1), code, reactions)
        incoming = IncomingAgent(1, messages[0].payload)
        for message in reversed(messages[1:]):
            incoming.accept(message.am_type, message.payload)
            incoming.accept(message.am_type, message.payload)  # duplicate
        assert incoming.complete
        assert incoming.build().code == code

    def test_incomplete_transfer_refuses_to_build(self):
        from repro.errors import NetworkError

        agent, code, reactions = loaded_agent()
        messages = serialize_agent(agent, "smove", Location(5, 1), code, reactions)
        incoming = IncomingAgent(1, messages[0].payload)
        with pytest.raises(NetworkError):
            incoming.build()

    def test_relay_reserialization_is_identical(self):
        agent, code, reactions = loaded_agent()
        messages = serialize_agent(agent, "smove", Location(5, 1), code, reactions)
        image = replay(messages).build()
        relayed = messages_from_image(image)
        assert [m.payload for m in relayed] == [m.payload for m in messages]

    def test_ack_codec(self):
        assert decode_ack(encode_ack(0xBEEF, 7)) == (0xBEEF, 7)

    @given(
        code=st.binary(min_size=1, max_size=300),
        kind=st.sampled_from(["smove", "wmove", "sclone", "wclone"]),
        pc=st.integers(min_value=0, max_value=299),
        species=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, code, kind, pc, species):
        agent = Agent(0x1234, name=species)
        agent.pc = pc
        messages = serialize_agent(agent, kind, Location(3, 3), code, [])
        image = replay(messages).build()
        assert image.code == code
        assert image.species == species
        if kind in ("smove", "sclone"):
            assert image.pc == pc


class TestEndToEndMode:
    def params(self):
        return AgillaParams(e2e_migration=True)

    def test_e2e_arrives_on_perfect_links(self):
        net = corridor(3, params=self.params())
        agent = net.inject(
            assemble("pushloc 3 1\nsmove\nwait", name="eee"), at=(1, 1)
        )
        net.run(5.0)
        assert agent.state == AgentState.DEAD  # optimistic custody transfer
        arrived = net.agents_at((3, 1))
        assert len(arrived) == 1
        assert arrived[0].name == "eee"

    def test_e2e_uses_no_acks(self):
        net = corridor(2, params=self.params())
        net.inject(assemble("pushloc 2 1\nsmove\nwait", name="eee"), at=(1, 1))
        net.run(5.0)
        ack_frames = [
            1
            for radio in net.channel.radios
            if radio.frames_sent and radio.mote.id == 2
        ]
        # The receiver never transmits: no acks in e2e mode.
        assert net.middleware((2, 1)).mote.radio.frames_sent == 0

    def test_e2e_loses_agents_on_lossy_links(self):
        # The §3.2 justification: a single lost message silently loses the
        # whole agent (the sender killed its copy optimistically).
        net = corridor(2, params=self.params(), lossless=False)
        net.channel.prr_overrides[(1, 2)] = 0.0
        agent = net.inject(
            assemble("pushloc 2 1\nsmove\nwait", name="gon"), at=(1, 1)
        )
        net.run(5.0)
        assert agent.death_reason == "moved (e2e, unconfirmed)"
        assert net.agents_at((2, 1)) == []  # the agent is simply gone

    def test_e2e_clone_parent_resumes_optimistically(self):
        net = corridor(2, params=self.params())
        agent = net.inject(
            assemble("pushloc 2 1\nsclone\nwait", name="cln"), at=(1, 1)
        )
        net.run(5.0)
        assert agent.state == AgentState.WAIT_RXN
        assert agent.condition == 1  # optimism, not knowledge
