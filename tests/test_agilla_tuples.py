"""Unit tests for tuples, templates, the tuple space, and reactions."""

import pytest

from repro.agilla.fields import (
    FieldType,
    LocationField,
    StringField,
    TypeWildcard,
    Value,
)
from repro.agilla.reactions import Reaction, ReactionRegistry
from repro.agilla.tuples import AgillaTuple, make_template, make_tuple
from repro.agilla.tuplespace import TupleSpace
from repro.errors import (
    ReactionRegistryFullError,
    TupleSpaceError,
    TupleSpaceFullError,
    TupleTooLargeError,
)
from repro.location import Location


def fire_tuple(x=3, y=3):
    return make_tuple(StringField("fir"), LocationField(Location(x, y)))


def fire_template():
    return make_template(StringField("fir"), TypeWildcard(FieldType.LOCATION))


class TestTuples:
    def test_arity_and_sizes(self):
        tup = fire_tuple()
        assert tup.arity == 2
        assert tup.field_bytes == 3 + 5
        assert tup.wire_size == 9

    def test_encode_decode_round_trip(self):
        tup = fire_tuple()
        decoded, consumed = AgillaTuple.decode(tup.encode())
        assert decoded == tup
        assert consumed == tup.wire_size

    def test_template_flag(self):
        assert fire_template().is_template
        assert not fire_tuple().is_template

    def test_make_tuple_rejects_wildcards(self):
        with pytest.raises(TupleSpaceError):
            make_tuple(TypeWildcard(FieldType.VALUE))

    def test_25_byte_field_limit(self):
        # Eight values = 24 bytes of fields: fine.
        make_tuple(*[Value(i) for i in range(8)])
        # Five locations = 25 bytes: exactly at the limit.
        make_tuple(*[LocationField(Location(i, i)) for i in range(5)])
        with pytest.raises(TupleTooLargeError):
            make_tuple(
                Value(0), *[LocationField(Location(i, i)) for i in range(5)]
            )

    def test_matching_requires_same_arity(self):
        template = make_template(StringField("fir"))
        assert not template.matches(fire_tuple())

    def test_matching_with_wildcards(self):
        assert fire_template().matches(fire_tuple())
        assert fire_template().matches(fire_tuple(9, 9))
        other = make_tuple(StringField("foo"), LocationField(Location(3, 3)))
        assert not fire_template().matches(other)

    def test_exact_match_without_wildcards(self):
        assert fire_tuple().matches(fire_tuple())
        assert not fire_tuple(1, 1).matches(fire_tuple(2, 2))


class TestTupleSpace:
    def test_out_and_rdp(self):
        space = TupleSpace()
        space.out(fire_tuple())
        assert space.rdp(fire_template()) == fire_tuple()
        assert len(space) == 1  # rdp copies

    def test_inp_removes(self):
        space = TupleSpace()
        space.out(fire_tuple())
        assert space.inp(fire_template()) == fire_tuple()
        assert space.inp(fire_template()) is None
        assert len(space) == 0

    def test_first_match_semantics(self):
        space = TupleSpace()
        space.out(fire_tuple(1, 1))
        space.out(fire_tuple(2, 2))
        assert space.inp(fire_template()) == fire_tuple(1, 1)
        assert space.inp(fire_template()) == fire_tuple(2, 2)

    def test_count(self):
        space = TupleSpace()
        for i in range(3):
            space.out(fire_tuple(i, i))
        space.out(make_tuple(Value(9)))
        assert space.count(fire_template()) == 3

    def test_capacity_enforced(self):
        space = TupleSpace(capacity=20)
        space.out(fire_tuple())  # 9 bytes
        space.out(fire_tuple())  # 18 bytes
        with pytest.raises(TupleSpaceFullError):
            space.out(fire_tuple())
        assert space.used_bytes == 18
        assert space.free_bytes == 2

    def test_templates_cannot_be_inserted(self):
        with pytest.raises(TupleSpaceError):
            TupleSpace().out(fire_template())

    def test_work_accounting_scan(self):
        space = TupleSpace()
        space.out(make_tuple(Value(1)))  # 4 bytes
        space.out(fire_tuple())  # 9 bytes
        space.rdp(fire_template())
        assert space.last_work.bytes_scanned == 13  # scanned both

    def test_work_accounting_shift(self):
        space = TupleSpace()
        space.out(fire_tuple())  # 9 bytes (will be removed)
        space.out(make_tuple(Value(1)))  # 4 bytes trailing
        space.out(make_tuple(Value(2)))  # 4 bytes trailing
        space.inp(fire_template())
        assert space.last_work.bytes_shifted == 8

    def test_remove_all(self):
        space = TupleSpace()
        space.out(fire_tuple(1, 1))
        space.out(fire_tuple(2, 2))
        space.out(make_tuple(Value(7)))
        assert space.remove_all(fire_template()) == 2
        assert len(space) == 1

    def test_stats(self):
        space = TupleSpace()
        space.out(fire_tuple())
        space.inp(fire_template())
        assert space.inserts == 1
        assert space.removals == 1


class TestReactionRegistry:
    def test_register_and_match(self):
        registry = ReactionRegistry()
        reaction = Reaction(7, fire_template(), 40)
        registry.register(reaction)
        assert registry.matching(fire_tuple()) == [reaction]
        assert registry.matching(make_tuple(Value(1))) == []

    def test_duplicate_registration_is_noop(self):
        registry = ReactionRegistry()
        reaction = Reaction(7, fire_template(), 40)
        registry.register(reaction)
        registry.register(reaction)
        assert len(registry) == 1

    def test_deregister(self):
        registry = ReactionRegistry()
        registry.register(Reaction(7, fire_template(), 40))
        assert registry.deregister(7, fire_template())
        assert not registry.deregister(7, fire_template())
        assert len(registry) == 0

    def test_deregister_checks_agent(self):
        registry = ReactionRegistry()
        registry.register(Reaction(7, fire_template(), 40))
        assert not registry.deregister(8, fire_template())

    def test_remove_agent(self):
        registry = ReactionRegistry()
        registry.register(Reaction(7, fire_template(), 40))
        registry.register(Reaction(7, make_template(Value(1)), 50))
        registry.register(Reaction(8, fire_template(), 60))
        removed = registry.remove_agent(7)
        assert len(removed) == 2
        assert len(registry) == 1

    def test_byte_budget(self):
        # Each fire-template reaction costs 5 + 1 + 7 = 13 bytes; the paper's
        # 400-byte default holds plenty, a tiny registry does not.
        registry = ReactionRegistry(capacity=30)
        registry.register(Reaction(1, fire_template(), 0))
        registry.register(Reaction(2, fire_template(), 0))
        with pytest.raises(ReactionRegistryFullError):
            registry.register(Reaction(3, fire_template(), 0))

    def test_default_budget_holds_about_ten_reactions(self):
        # Paper §3.2: 400 bytes "allowing it to remember up to 10 reactions".
        registry = ReactionRegistry()
        template = make_template(
            StringField("fir"),
            TypeWildcard(FieldType.LOCATION),
            TypeWildcard(FieldType.VALUE),
            TypeWildcard(FieldType.VALUE),
            TypeWildcard(FieldType.READING),
            TypeWildcard(FieldType.READING),
            TypeWildcard(FieldType.READING),
            TypeWildcard(FieldType.STRING),
            TypeWildcard(FieldType.STRING),
            TypeWildcard(FieldType.STRING),
        )
        count = 0
        try:
            for agent_id in range(50):
                registry.register(Reaction(agent_id, template, 0))
                count += 1
        except ReactionRegistryFullError:
            pass
        assert 8 <= count <= 16

    def test_for_agent_preserves_order(self):
        registry = ReactionRegistry()
        first = Reaction(7, fire_template(), 40)
        second = Reaction(7, make_template(Value(1)), 50)
        registry.register(first)
        registry.register(second)
        assert registry.for_agent(7) == [first, second]
