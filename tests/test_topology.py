"""Topology layer: generator invariants, spec loading, deployment parity.

The refactor contract is enforced here: ``GridTopology(5, 5)`` deployed
through :class:`SensorNetwork` must reproduce the seed ``GridNetwork``
bit-for-bit (hard-coded golden counters captured from the pre-refactor
builder), and the radio channel must deliver via its cached in-range index
rather than scanning every attached radio.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agilla.assembler import assemble
from repro.errors import TopologyError
from repro.location import Location
from repro.network import GridNetwork, SensorNetwork, build_network
from repro.radio.channel import Channel
from repro.radio.frame import Frame
from repro.radio.linkmodels import PerfectLinks, UniformLossLinks
from repro.sim.kernel import Simulator
from repro.topology import (
    ClusteredTopology,
    ExplicitTopology,
    GridTopology,
    LineTopology,
    RandomUniformTopology,
    from_spec,
)
from tests.test_radio import make_mote

# ----------------------------------------------------------------------
# Strategies: one of each generator family, parameterized
# ----------------------------------------------------------------------
topologies = st.one_of(
    st.builds(
        GridTopology,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    ),
    st.builds(LineTopology, st.integers(min_value=1, max_value=20)),
    st.builds(
        RandomUniformTopology,
        count=st.integers(min_value=1, max_value=60),
        radius=st.sampled_from([1.0, 1.5, 2.0]),
        seed=st.integers(min_value=0, max_value=5),
    ),
    st.builds(
        ClusteredTopology,
        clusters=st.integers(min_value=1, max_value=4),
        cluster_size=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=5),
    ),
)


class TestTopologyInvariants:
    @given(topologies)
    @settings(max_examples=60, deadline=None)
    def test_ids_unique_and_locations_distinct(self, topology):
        directory = topology.directory()
        assert len(directory) == len(topology)
        assert len(set(directory.values())) == len(directory)
        assert sorted(directory) == list(range(1, len(topology) + 1))
        for mote_id, location in directory.items():
            assert topology.mote_id(location) == mote_id

    @given(topologies)
    @settings(max_examples=60, deadline=None)
    def test_neighbor_relation_symmetric_and_loop_free(self, topology):
        for location in topology:
            neighbors = topology.neighbors(location)
            assert location not in neighbors
            for neighbor in neighbors:
                assert location in topology.neighbors(neighbor)
        topology.validate()  # must agree with the built-in checker

    @given(topologies)
    @settings(max_examples=30, deadline=None)
    def test_gateway_is_a_member_nearest_origin(self, topology):
        gateway = topology.gateway()
        assert gateway in topology
        best = min(loc.x**2 + loc.y**2 for loc in topology)
        assert gateway.x**2 + gateway.y**2 == best

    @given(topologies, st.sampled_from([1.0, 22.0, 60.0]))
    @settings(max_examples=30, deadline=None)
    def test_positions_array_rows_follow_mote_id_order(self, topology, spacing):
        positions = topology.positions_array(spacing_m=spacing)
        assert positions.shape == (len(topology), 2)
        directory = topology.directory()
        for mote_id in range(1, len(topology) + 1):
            assert tuple(positions[mote_id - 1]) == topology.position(
                directory[mote_id], spacing_m=spacing
            )

    def test_grid_matches_paper_shape(self):
        topology = GridTopology(5, 5)
        assert len(topology) == 25
        assert topology.mote_id(Location(1, 1)) == 1
        assert topology.mote_id(Location(5, 5)) == 25
        assert topology.neighbors(Location(3, 3)) == frozenset(
            {Location(2, 3), Location(4, 3), Location(3, 2), Location(3, 4)}
        )
        assert topology.degree(Location(1, 1)) == 2

    def test_line_is_a_corridor(self):
        topology = LineTopology(4)
        assert [loc.y for loc in topology] == [1, 1, 1, 1]
        assert topology.degree(Location(1, 1)) == 1
        assert topology.degree(Location(2, 1)) == 2

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(TopologyError):
            GridTopology(0, 5)
        with pytest.raises(TopologyError):
            ExplicitTopology([(1, 1), (1, 1)]).locations()
        with pytest.raises(TopologyError):
            ExplicitTopology([(1, 1), (2, 1)], edges=[((1, 1), (9, 9))]).validate()

    def test_explicit_edges_are_symmetric(self):
        topology = ExplicitTopology(
            [(1, 1), (2, 1), (4, 1)], edges=[((1, 1), (2, 1)), ((2, 1), (4, 1))]
        ).validate()
        assert topology.neighbors(Location(4, 1)) == frozenset({Location(2, 1)})
        assert topology.neighbors(Location(2, 1)) == frozenset(
            {Location(1, 1), Location(4, 1)}
        )


class TestFromSpec:
    def test_grid_spec(self):
        topology = from_spec({"kind": "grid", "width": 3, "height": 2})
        assert isinstance(topology, GridTopology)
        assert len(topology) == 6

    def test_random_spec_is_deterministic(self):
        spec = {"kind": "random", "count": 40, "seed": 9}
        assert from_spec(spec).locations() == from_spec(spec).locations()

    def test_explicit_spec_with_edges(self):
        topology = from_spec(
            {
                "kind": "explicit",
                "nodes": [[1, 1], [2, 1], [4, 1]],
                "edges": [[[1, 1], [2, 1]], [[2, 1], [4, 1]]],
            }
        )
        assert topology.degree(Location(2, 1)) == 2

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps({"kind": "clustered", "clusters": 2, "cluster_size": 5}))
        topology = from_spec(path)
        assert isinstance(topology, ClusteredTopology)
        assert len(topology) == 10

    def test_bad_specs_fail_loudly(self, tmp_path):
        with pytest.raises(TopologyError):
            from_spec({"kind": "moebius"})
        with pytest.raises(TopologyError):
            from_spec({"kind": "grid", "widht": 5})
        with pytest.raises(TopologyError):
            from_spec(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TopologyError):
            from_spec(str(bad))


# ----------------------------------------------------------------------
# Deployment parity: the refactored builder reproduces the seed network
# ----------------------------------------------------------------------
def _fixed_seed_run(net) -> tuple[int, int, int]:
    net.inject(assemble("pushc 1\npushc 1\npushloc 5 5\nrout\nhalt", name="gold"))
    net.run(30.0)
    return (net.radio_messages(), net.sim.events_fired, net.radio_bytes())


class TestSeedNetworkParity:
    #: Captured from the pre-refactor GridNetwork (default 5x5, lossy links,
    #: beacons on) — (radio_messages, events_fired, radio_bytes) per seed.
    #: The frame and byte counts are untouched since the seed capture; the
    #: event counts were re-pinned for PR 5's run-slice engine, which by
    #: design posts O(slices) instead of O(instructions) kernel events
    #: (frame/byte identity across that change is what proves the CPU
    #: timeline didn't move).
    GOLDEN = {0: (96, 481, 3557), 3: (93, 496, 3354), 7: (78, 431, 2730)}

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_grid_network_bit_for_bit(self, seed):
        assert _fixed_seed_run(GridNetwork(seed=seed)) == self.GOLDEN[seed]

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_sensor_network_over_grid_topology_bit_for_bit(self, seed):
        net = SensorNetwork(GridTopology(5, 5), seed=seed)
        assert _fixed_seed_run(net) == self.GOLDEN[seed]

    def test_physical_mode_bit_for_bit(self):
        net = GridNetwork(
            width=4, height=1, physical=True, physical_spacing_m=35.0,
            base_station=False, seed=3,
        )
        net.inject(assemble("pushloc 4 1\nsmove\nwait", name="phy"), at=(1, 1))
        net.run(30.0)
        # Event count re-pinned for the PR 5 run-slice engine; frames/bytes
        # are the seed capture's.
        assert (net.radio_messages(), net.sim.events_fired, net.radio_bytes()) == (
            28, 114, 984,
        )


class TestSensorNetworkDeployments:
    def test_agents_run_over_a_random_topology(self):
        topology = RandomUniformTopology(count=30, seed=2)
        net = SensorNetwork(
            topology, seed=1, base_station=False, link_model=PerfectLinks()
        )
        start = topology.gateway()
        neighbor = min(topology.neighbors(start))
        agent = net.inject(
            assemble(f"pushloc {neighbor.x} {neighbor.y}\nsmove\nwait", name="rnd"),
            at=start,
        )
        assert net.run_until(
            lambda: any(a.name == "rnd" for a in net.agents_at(neighbor)), 30.0
        )

    def test_base_station_bridges_to_gateway(self):
        topology = RandomUniformTopology(count=20, seed=4)
        net = SensorNetwork(topology, seed=0, link_model=PerfectLinks())
        gateway_id = topology.mote_id(topology.gateway())
        assert net.base_station.router.next_hop(topology.gateway()) == gateway_id

    def test_base_station_collision_rejected(self):
        topology = ExplicitTopology([(0, 0), (1, 0)])
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            SensorNetwork(topology)

    def test_build_network_accepts_spec_dict(self):
        net = build_network(
            {"kind": "line", "length": 3}, base_station=False, beacons=False
        )
        assert len(net.nodes) == 3

    def test_neighbor_filter_derives_from_topology(self):
        topology = ExplicitTopology(
            [(1, 1), (2, 1), (5, 5)], edges=[((1, 1), (2, 1))]
        )
        net = SensorNetwork(
            topology, base_station=False, link_model=PerfectLinks(), beacons=False
        )
        far = net.node((5, 5)).stack
        net.node((1, 1)).stack.broadcast(0x42, b"x")
        net.sim.run(duration=1_000_000)
        assert far.dropped_by_filter >= 1
        assert net.node((2, 1)).stack.dropped_by_filter == 0


# ----------------------------------------------------------------------
# O(degree) channel: deliveries go through the cached in-range index
# ----------------------------------------------------------------------
class _CountingLinks(PerfectLinks):
    def __init__(self, range_m):
        super().__init__(range_m=range_m)
        self.in_range_calls = 0

    def in_range(self, src, dst):
        self.in_range_calls += 1
        return super().in_range(src, dst)

    def prr(self, src, dst):
        return 1.0  # keep per-delivery PRR lookups out of the in_range count


class TestChannelNeighborIndex:
    def test_hearers_are_the_in_range_subset(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks(range_m=1.5), grid_spacing_m=1.0)
        radios = [channel.attach(make_mote(sim, i, i, 1)) for i in range(1, 6)]
        audience = channel.hearers(radios[2])
        assert [radio.mote.id for radio in audience] == [2, 4]

    def test_delivery_does_not_rescan_link_model(self):
        sim = Simulator()
        links = _CountingLinks(range_m=1.5)
        channel = Channel(sim, links, grid_spacing_m=1.0)
        radios = [channel.attach(make_mote(sim, i, i, 1)) for i in range(1, 30)]
        for radio in radios:
            radio.set_receive_callback(lambda frame: None)
        radios[0].send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        calls_after_warmup = links.in_range_calls
        for _ in range(10):
            radios[0].send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        # Cached index: repeated frames never re-query link geometry.
        assert links.in_range_calls == calls_after_warmup

    def test_attach_invalidates_index(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks(range_m=1.5), grid_spacing_m=1.0)
        first = channel.attach(make_mote(sim, 1, 1, 1))
        assert channel.hearers(first) == []
        second = channel.attach(make_mote(sim, 2, 2, 1))
        assert [r.mote.id for r in channel.hearers(first)] == [2]

    def test_link_model_swap_invalidates_index(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks(range_m=100.0), grid_spacing_m=1.0)
        a = channel.attach(make_mote(sim, 1, 1, 1))
        b = channel.attach(make_mote(sim, 2, 9, 1))
        assert [r.mote.id for r in channel.hearers(a)] == [2]
        channel.link_model = PerfectLinks(range_m=2.0)
        assert channel.hearers(a) == []

    def test_index_handles_models_without_range(self):
        class NoRangeLinks:
            def in_range(self, src, dst):
                return True

            def prr(self, src, dst):
                return 1.0

        sim = Simulator()
        channel = Channel(sim, NoRangeLinks())
        radios = [channel.attach(make_mote(sim, i, i, 1)) for i in range(1, 4)]
        assert len(channel.hearers(radios[0])) == 2
        got = []
        radios[2].set_receive_callback(got.append)
        radios[0].send(Frame(1, 3, 0x10, b"x"))
        sim.run_until_idle()
        assert len(got) == 1

    def test_receivers_own_finished_transmission_still_collides(self):
        # Half-duplex history: B transmitted during the first half of A's
        # frame and finished before it ended (so transmitting_during sees
        # nothing) — the frame must still be corrupted, exactly as when the
        # channel compared every transmission against every radio.
        from repro.radio.channel import Transmission

        sim = Simulator()
        channel = Channel(sim, PerfectLinks())
        a = channel.attach(make_mote(sim, 1, 1, 1))
        b = channel.attach(make_mote(sim, 2, 2, 1))
        got = []
        b.set_receive_callback(got.append)
        tx_a = Transmission(a, Frame(1, 2, 0x10, b"x"), 0, 100)
        tx_b = Transmission(b, Frame(2, 1, 0x10, b"y"), 0, 50)
        channel.begin_transmission(tx_a)
        channel.begin_transmission(tx_b)
        channel.end_transmission(tx_a)
        assert got == []
        assert channel.collisions == 1

    def test_finished_transmissions_are_not_retained(self):
        """The channel keeps no transmission history: overlap sets are built
        while frames share the air, so a long run leaves the on-air list
        empty and serialized frames never accumulate overlap references."""
        sim = Simulator()
        channel = Channel(sim, UniformLossLinks())
        a = channel.attach(make_mote(sim, 1, 1, 1))
        b = channel.attach(make_mote(sim, 2, 2, 1))
        b.set_receive_callback(lambda frame: None)
        for _ in range(200):
            a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        assert channel._on_air == []
