"""The public facade: pinned ``__all__``, run() parity, deprecations.

``repro.__all__`` is the supported surface — this test pins it exactly so
a rename or removal shows up as a deliberate diff here, not as a silent
break for downstream imports.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import RunResult

EXPECTED_ALL = [
    "Agent",
    "AgentState",
    "AgillaMiddleware",
    "AgillaParams",
    "AgillaTuple",
    "Program",
    "StringField",
    "assemble",
    "disassemble",
    "make_template",
    "make_tuple",
    "blink_agent",
    "chaser",
    "firedetector",
    "firetracker",
    "habitat_monitor",
    "rout_agent",
    "sampler",
    "smove_agent",
    "BASE_STATION_LOCATION",
    "Location",
    "Environment",
    "FireField",
    "HotspotField",
    "MovingTargetField",
    "waypoint_path",
    "LIGHT",
    "MAGNETOMETER",
    "TEMPERATURE",
    "Deployment",
    "GridNetwork",
    "Node",
    "SensorNetwork",
    "build_grid_network",
    "build_network",
    "DeploymentDynamics",
    "DutyCycle",
    "StaticMobility",
    "LinearDrift",
    "RandomWaypoint",
    "ScheduledChurn",
    "RandomLifetimes",
    "dynamics_from_spec",
    "Scenario",
    "BUILTIN_SCENARIOS",
    "Simulator",
    "Topology",
    "GridTopology",
    "LineTopology",
    "RandomUniformTopology",
    "ClusteredTopology",
    "ExplicitTopology",
    "from_spec",
    "RunResult",
    "run",
    "run_scenario",
    "ShardedRunner",
    "FaultPlan",
    "__version__",
]


def test_all_is_pinned_exactly():
    assert list(repro.__all__) == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_grid_network_is_deprecated_but_equivalent():
    with pytest.warns(DeprecationWarning, match="SensorNetwork"):
        old = repro.GridNetwork(3, 3, seed=5)
    new = repro.SensorNetwork(repro.GridTopology(3, 3), seed=5)
    old.run(12.0)  # past the first beacon round so the radio actually keys
    new.run(12.0)
    assert old.radio_messages() == new.radio_messages()
    assert old.radio_bytes() == new.radio_bytes()
    assert old.channel.collisions == new.channel.collisions


def test_run_matches_legacy_scenario_path_bit_for_bit():
    result = repro.run("static-flood", seed=3, duration_s=5.0)
    assert isinstance(result, RunResult)
    import dataclasses

    legacy = dataclasses.replace(
        repro.Scenario.from_spec("static-flood"), seed=3, duration_s=5.0
    ).run()
    for key, value in result.counters.items():
        assert legacy[key] == value, key
    # timings are wall-clock and intentionally kept out of counters
    assert "wall_s" in result.timings and "wall_s" not in result.counters


def test_run_scenario_alias_and_as_row():
    result = repro.run_scenario("static-flood", seed=1, duration_s=3.0)
    row = result.as_row()
    assert set(row) == set(result.counters) | set(result.timings)
    assert result["nodes"] == result.counters["nodes"]


def test_run_sharded_entry_point():
    result = repro.run(
        {
            "name": "api-shard",
            "topology": {"kind": "grid", "width": 6, "height": 2},
            "workload": {"kind": "flood"},
            "duration_s": 1.0,
            "seed": 0,
            "spacing_m": 60.0,
        },
        shards=2,
    )
    assert result.mode == "process"
    assert result.shards == 2
    assert len(result.per_shard) == 2
