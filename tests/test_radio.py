"""Unit tests for frames, link models and the CSMA channel."""

import pytest

from repro.errors import RadioError
from repro.mote import Environment, Mote
from repro.net.addresses import BROADCAST_ID, Location
from repro.radio import (
    Channel,
    DistancePrrLinks,
    Frame,
    MacParams,
    PerfectLinks,
    UniformLossLinks,
)
from repro.radio.frame import FRAME_OVERHEAD_BYTES, MAX_PAYLOAD
from repro.sim import Simulator, ms


def make_mote(sim, mote_id, x, y):
    return Mote(sim, mote_id, Location(x, y), Environment())


class TestFrame:
    def test_payload_limit_is_27_bytes(self):
        Frame(1, 2, 0x10, bytes(MAX_PAYLOAD))
        with pytest.raises(RadioError):
            Frame(1, 2, 0x10, bytes(MAX_PAYLOAD + 1))

    def test_air_bytes_include_overhead(self):
        frame = Frame(1, 2, 0x10, b"abc")
        assert frame.air_bytes == 3 + FRAME_OVERHEAD_BYTES

    def test_broadcast_flag(self):
        assert Frame(1, BROADCAST_ID, 0x10).is_broadcast
        assert not Frame(1, 2, 0x10).is_broadcast


class TestLinkModels:
    def test_perfect_links(self):
        model = PerfectLinks(range_m=10)
        assert model.prr((0, 0), (0, 9)) == 1.0
        assert model.prr((0, 0), (0, 11)) == 0.0

    def test_uniform_loss(self):
        model = UniformLossLinks(prr=0.9, range_m=10)
        assert model.prr((0, 0), (1, 0)) == 0.9
        assert not model.in_range((0, 0), (20, 0))
        with pytest.raises(ValueError):
            UniformLossLinks(prr=1.5)

    def test_distance_prr_decays(self):
        model = DistancePrrLinks(connected_m=10, range_m=20, prr_connected=1.0)
        assert model.prr((0, 0), (5, 0)) == 1.0
        assert model.prr((0, 0), (15, 0)) == pytest.approx(0.5)
        assert model.prr((0, 0), (25, 0)) == 0.0
        with pytest.raises(ValueError):
            DistancePrrLinks(connected_m=30, range_m=20)


class TestChannel:
    def _pair(self, seed=0, link_model=None):
        sim = Simulator(seed=seed)
        channel = Channel(sim, link_model or PerfectLinks())
        a = make_mote(sim, 1, 1, 1)
        b = make_mote(sim, 2, 2, 1)
        radio_a = channel.attach(a)
        radio_b = channel.attach(b)
        return sim, channel, radio_a, radio_b

    def test_delivery_on_perfect_link(self):
        sim, channel, radio_a, radio_b = self._pair()
        got = []
        radio_b.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"hello"))
        sim.run_until_idle()
        assert len(got) == 1
        assert got[0].payload == b"hello"

    def test_airtime_scales_with_size(self):
        sim, channel, _, _ = self._pair()
        small = channel.airtime_us(Frame(1, 2, 0x10, b""))
        large = channel.airtime_us(Frame(1, 2, 0x10, bytes(MAX_PAYLOAD)))
        assert large > small
        # 27+29 bytes at 19.2 kbps is roughly 23 ms.
        assert ms(20) < large < ms(27)

    def test_sender_does_not_hear_itself(self):
        sim, channel, radio_a, radio_b = self._pair()
        got = []
        radio_a.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert got == []

    def test_broadcast_reaches_all_in_range(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks())
        radios = [channel.attach(make_mote(sim, i, i, 1)) for i in range(1, 4)]
        got = {i: [] for i in range(3)}
        for index, radio in enumerate(radios):
            radio.set_receive_callback(got[index].append)
        radios[0].send(Frame(1, BROADCAST_ID, 0x10, b"b"))
        sim.run_until_idle()
        assert len(got[1]) == 1 and len(got[2]) == 1
        assert got[0] == []

    def test_lossy_link_drops_some(self):
        drops = 0
        deliveries = 0
        sim = Simulator(seed=42)
        channel = Channel(sim, UniformLossLinks(prr=0.5))
        a = make_mote(sim, 1, 1, 1)
        b = make_mote(sim, 2, 2, 1)
        radio_a = channel.attach(a)
        radio_b = channel.attach(b)
        got = []
        radio_b.set_receive_callback(got.append)
        for _ in range(200):
            radio_a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        deliveries = len(got)
        drops = channel.prr_drops
        assert deliveries + drops == 200
        assert 60 < deliveries < 140  # ~100 expected

    def test_prr_override_forces_loss(self):
        sim, channel, radio_a, radio_b = self._pair()
        channel.prr_overrides[(1, 2)] = 0.0
        got = []
        radio_b.set_receive_callback(got.append)
        for _ in range(5):
            radio_a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        assert got == []
        assert channel.prr_drops == 5

    def test_disabled_radio_does_not_receive(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_b.enabled = False
        got = []
        radio_b.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert got == []

    def test_disabled_radio_send_fails(self):
        sim, channel, radio_a, _ = self._pair()
        radio_a.enabled = False
        outcomes = []
        radio_a.send(Frame(1, 2, 0x10, b"x"), outcomes.append)
        sim.run_until_idle()
        assert outcomes == [False]

    def test_concurrent_send_rejected(self):
        sim, channel, radio_a, _ = self._pair()
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        with pytest.raises(RadioError):
            radio_a.send(Frame(1, 2, 0x10, b"y"))
        sim.run_until_idle()

    def test_send_done_callback_fires_true(self):
        sim, channel, radio_a, _ = self._pair()
        outcomes = []
        radio_a.send(Frame(1, 2, 0x10, b"x"), outcomes.append)
        sim.run_until_idle()
        assert outcomes == [True]

    def test_out_of_range_not_delivered(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks(range_m=0.5), grid_spacing_m=1.0)
        a = make_mote(sim, 1, 1, 1)
        b = make_mote(sim, 2, 5, 1)
        radio_a = channel.attach(a)
        radio_b = channel.attach(b)
        got = []
        radio_b.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert got == []

    def test_carrier_sense_defers_second_sender(self):
        # With CSMA both frames should get through without collision.
        sim = Simulator(seed=9)
        channel = Channel(sim, PerfectLinks())
        motes = [make_mote(sim, i, i, 1) for i in range(1, 4)]
        radios = [channel.attach(m) for m in motes]
        got = []
        radios[2].set_receive_callback(got.append)
        radios[0].send(Frame(1, 3, 0x10, b"a"))
        radios[1].send(Frame(2, 3, 0x10, b"b"))
        sim.run_until_idle()
        assert len(got) + channel.collisions in (2, 1)
        # In the common case carrier sense avoids the collision entirely.
        assert len(got) >= 1

    def test_idle_carrier_sense_early_outs_before_any_index(self):
        # Nothing on the air answers from one list check: no per-tick
        # filtering, no audible-slot cache build, no field gather.
        sim, channel, radio_a, radio_b = self._pair()
        channel.vector_sense_min = 1  # even "always vector" must not engage
        for _ in range(3):
            assert channel.busy_for(radio_a) is False
            assert channel.busy_for(radio_b) is False
        assert channel.sense_idle == 6
        assert channel.sense_scalar == 0
        assert channel.sense_vector == 0
        assert channel._sense_tick == -1  # the per-tick memo never ran
        assert channel._audible_slots == {}  # no audible-slot array was built

    def test_carrier_sense_dispatch_counters_split_on_threshold(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        while not channel._on_air:  # step past the initial backoff
            sim.run(duration=ms(1))
        # The MAC's own pre-send carrier sense already ran; count deltas.
        idle, scalar, vector = channel.sense_idle, channel.sense_scalar, channel.sense_vector
        channel.vector_sense_min = 1
        assert channel.busy_for(radio_b) is True  # audible-slot gather
        channel.vector_sense_min = len(channel._on_air) + 1
        assert channel.busy_for(radio_b) is True  # scalar on-air scan
        assert channel.sense_vector == vector + 1
        assert channel.sense_scalar == scalar + 1
        assert channel.sense_idle == idle
        sim.run_until_idle()
        assert channel.busy_for(radio_b) is False
        assert channel.sense_idle == idle + 1

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        channel = Channel(sim)
        mote = make_mote(sim, 1, 1, 1)
        channel.attach(mote)
        with pytest.raises(RadioError):
            channel.attach(mote)

    def test_stats_counted(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_b.set_receive_callback(lambda f: None)
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert channel.frames_transmitted == 1
        assert radio_a.frames_sent == 1
        assert radio_b.frames_received == 1
        assert radio_a.bytes_sent > 0


class TestLinkCache:
    """The memoized per-pair PRR cache behind the delivery hot path."""

    def _pair(self, link_model=None, seed=0):
        sim = Simulator(seed=seed)
        channel = Channel(sim, link_model or PerfectLinks(), grid_spacing_m=1.0)
        a = make_mote(sim, 1, 1, 1)
        b = make_mote(sim, 2, 2, 1)
        return sim, channel, channel.attach(a), channel.attach(b)

    def test_repeat_deliveries_hit_the_cache(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_b.set_receive_callback(lambda f: None)
        for _ in range(5):
            radio_a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        cache = channel.link_cache
        assert cache.cache_misses == 1  # first delivery computed the PRR
        assert cache.cache_hits == 4  # the rest reused it
        assert len(cache) == 1

    def test_cached_prr_matches_the_model(self):
        sim, channel, radio_a, radio_b = self._pair(UniformLossLinks(prr=0.7))
        radio_b.set_receive_callback(lambda f: None)
        for _ in range(3):
            radio_a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        assert channel.link_cache.row(1)[2] == 0.7

    def test_override_installed_mid_flight_applies_to_next_delivery(self):
        """Regression: ``prr_overrides`` set *after* a frame is already on
        the air must still decide that frame's reception — the override path
        bypasses the warm LinkCache entirely and bumps ``prr_drops``."""
        sim, channel, radio_a, radio_b = self._pair()
        got = []
        radio_b.set_receive_callback(got.append)
        # Warm the cache with a successful delivery at PRR 1.0.
        radio_a.send(Frame(1, 2, 0x10, b"warm"))
        sim.run_until_idle()
        assert got and channel.prr_drops == 0
        hits_before = channel.link_cache.cache_hits
        misses_before = channel.link_cache.cache_misses
        # Put the next frame on the air, then break the link mid-flight.
        radio_a.send(Frame(1, 2, 0x10, b"doomed"))
        sim.run(duration=ms(1))  # backoff + TX begin; end-of-frame is ahead
        channel.prr_overrides[(1, 2)] = 0.0
        sim.run_until_idle()
        assert len(got) == 1  # the in-flight frame was dropped
        assert channel.prr_drops == 1
        # The decision came from the override, not the cache.
        assert channel.link_cache.cache_hits == hits_before
        assert channel.link_cache.cache_misses == misses_before
        # Clearing the override re-exposes the cached PRR (1.0): delivery.
        del channel.prr_overrides[(1, 2)]
        radio_a.send(Frame(1, 2, 0x10, b"again"))
        sim.run_until_idle()
        assert len(got) == 2
        assert channel.link_cache.cache_hits == hits_before + 1

    def test_move_invalidates_only_the_movers_pairs(self):
        sim = Simulator()
        channel = Channel(sim, PerfectLinks(range_m=10.0), grid_spacing_m=1.0)
        radios = [channel.attach(make_mote(sim, i, i, 1)) for i in range(1, 4)]
        for radio in radios:
            radio.set_receive_callback(lambda f: None)
        radios[0].send(Frame(1, BROADCAST_ID, 0x10, b"b"))
        radios[1].send(Frame(2, BROADCAST_ID, 0x10, b"b"))
        sim.run_until_idle()
        cache = channel.link_cache
        assert len(cache) == 4  # 1->{2,3}, 2->{1,3}
        invalidations_before = cache.cache_invalidations
        channel.move(3, (5.0, 5.0))
        assert cache.cache_invalidations == invalidations_before + 1
        # Pairs involving mote 3 are gone; the 1<->2 pairs survived.
        assert set(cache.row(1)) == {2}
        assert set(cache.row(2)) == {1}
        # Re-delivery after the move recomputes at the new geometry.
        misses_before = cache.cache_misses
        radios[0].send(Frame(1, BROADCAST_ID, 0x10, b"b"))
        sim.run_until_idle()
        assert cache.cache_misses == misses_before + 1  # 1->3 refilled

    def test_detach_and_model_swap_invalidate(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_b.set_receive_callback(lambda f: None)
        radio_a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert len(channel.link_cache) == 1
        channel.detach(2)
        assert len(channel.link_cache) == 0
        version_before = channel.link_cache.version
        channel.link_model = PerfectLinks(range_m=5.0)
        assert channel.link_cache.version == version_before + 1


class TestVectorFanOut:
    """The vectorized delivery path (audience >= ``vector_fanout_min``) must
    be behavior- and counter-identical to the scalar loop.  Forcing the
    threshold to 1 re-runs the LinkCache regressions through the array
    passes specifically — masks, dense PRR rows, and the one-draw fan-out."""

    def _pair(self, link_model=None, seed=0):
        sim = Simulator(seed=seed)
        channel = Channel(sim, link_model or PerfectLinks(), grid_spacing_m=1.0)
        channel.vector_fanout_min = 1  # every fan-out takes the vector path
        a = make_mote(sim, 1, 1, 1)
        b = make_mote(sim, 2, 2, 1)
        return sim, channel, channel.attach(a), channel.attach(b)

    def test_repeat_deliveries_hit_the_cache(self):
        sim, channel, radio_a, radio_b = self._pair()
        radio_b.set_receive_callback(lambda f: None)
        for _ in range(5):
            radio_a.send(Frame(1, 2, 0x10, b"x"))
            sim.run_until_idle()
        cache = channel.link_cache
        assert cache.cache_misses == 1
        assert cache.cache_hits == 4
        assert radio_b.frames_received == 5

    def test_override_installed_mid_flight_applies_to_next_delivery(self):
        """The PR 5 regression, on the vector path: an override installed
        while the frame is on the air still decides its reception, bypassing
        the warm dense row without touching the hit/miss counters."""
        sim, channel, radio_a, radio_b = self._pair()
        got = []
        radio_b.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"warm"))
        sim.run_until_idle()
        assert got and channel.prr_drops == 0
        hits_before = channel.link_cache.cache_hits
        misses_before = channel.link_cache.cache_misses
        radio_a.send(Frame(1, 2, 0x10, b"doomed"))
        sim.run(duration=ms(1))
        channel.prr_overrides[(1, 2)] = 0.0
        sim.run_until_idle()
        assert len(got) == 1
        assert channel.prr_drops == 1
        assert channel.link_cache.cache_hits == hits_before
        assert channel.link_cache.cache_misses == misses_before
        del channel.prr_overrides[(1, 2)]
        radio_a.send(Frame(1, 2, 0x10, b"again"))
        sim.run_until_idle()
        assert len(got) == 2
        assert channel.link_cache.cache_hits == hits_before + 1

    def test_receiver_failed_mid_flight_misses_the_frame(self):
        """Failure injection on the vector path: powering a receiver down
        while a frame is in flight excludes it from the eligibility mask."""
        sim, channel, radio_a, radio_b = self._pair()
        got = []
        radio_b.set_receive_callback(got.append)
        radio_a.send(Frame(1, 2, 0x10, b"dark"))
        sim.run(duration=ms(1))
        radio_b.enabled = False
        sim.run_until_idle()
        assert got == []
        assert channel.prr_drops == 0  # ineligible, not unlucky

    def test_hidden_terminal_collision_on_vector_path(self):
        from repro.radio import Transmission

        sim = Simulator(seed=0)
        channel = Channel(sim, PerfectLinks(range_m=1.5), grid_spacing_m=1.0)
        channel.vector_fanout_min = 1
        radio_a = channel.attach(make_mote(sim, 1, 0, 0))
        radio_b = channel.attach(make_mote(sim, 2, 1, 0))
        radio_c = channel.attach(make_mote(sim, 3, 2, 0))
        got = []
        radio_b.set_receive_callback(got.append)
        # A and C are mutually inaudible but both reach B: put both frames on
        # the air directly (bypassing CSMA, which would defer one of them).
        tx_a = Transmission(radio_a, Frame(1, 0xFFFF, 0x10, b"x"), sim.now, sim.now + 100)
        tx_c = Transmission(radio_c, Frame(3, 0xFFFF, 0x10, b"y"), sim.now, sim.now + 100)
        channel.begin_transmission(tx_a)
        channel.begin_transmission(tx_c)
        channel.end_transmission(tx_a)
        channel.end_transmission(tx_c)
        assert got == []
        assert channel.collisions == 2
