"""Scenario layer: spec parsing, workloads, static-parity goldens, bench sweep."""

import json

import pytest

from repro.bench import scenarios as bench_scenarios
from repro.bench.cli import main as bench_main
from repro.errors import NetworkError
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    DEFAULT_SCENARIOS,
    Scenario,
    workload_from_spec,
)
from repro.scenarios.workloads import (
    FloodWorkload,
    HabitatWorkload,
    MixedTenantWorkload,
    TrackerPerimeterWorkload,
    agent_census,
)

MINI_GRID = {"kind": "grid", "width": 4, "height": 4}


def mini(name, workload, dynamics=None, duration_s=5.0, **overrides):
    spec = {
        "name": name,
        "topology": dict(MINI_GRID),
        "workload": workload,
        "duration_s": duration_s,
        "spacing_m": 60.0,
    }
    if dynamics is not None:
        spec["dynamics"] = dynamics
    spec.update(overrides)
    return spec


class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = mini("rt", {"kind": "flood"}, {"mobility": {"model": "linear"}})
        scenario = Scenario.from_spec(spec)
        assert scenario.name == "rt"
        assert Scenario.from_spec(scenario.to_spec()).to_spec() == scenario.to_spec()

    def test_json_file_loads(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(mini("from-file", "flood")))
        scenario = Scenario.from_spec(str(path))
        assert scenario.name == "from-file"
        assert scenario.workload == "flood"

    def test_builtin_names_resolve(self):
        for name in DEFAULT_SCENARIOS:
            scenario = Scenario.from_spec(name)
            assert scenario.name == name
            assert name in BUILTIN_SCENARIOS

    def test_unknown_keys_rejected(self):
        with pytest.raises(NetworkError):
            Scenario.from_spec(mini("bad", "flood", topologyy={"kind": "grid"}))
        with pytest.raises(NetworkError):
            Scenario.from_spec({"name": "no-topology"})
        with pytest.raises(NetworkError):
            Scenario.from_spec(str("/nonexistent/spec.json"))
        with pytest.raises(NetworkError, match="builtin"):  # typo'd builtin name
            Scenario.from_spec("mobile-traker")

    def test_workload_spec_validation(self):
        assert isinstance(workload_from_spec("flood"), FloodWorkload)
        assert isinstance(workload_from_spec({"kind": "tracker"}), TrackerPerimeterWorkload)
        assert isinstance(workload_from_spec({"kind": "habitat"}), HabitatWorkload)
        assert isinstance(workload_from_spec({"kind": "mixed"}), MixedTenantWorkload)
        with pytest.raises(NetworkError):
            workload_from_spec({"kind": "party"})
        with pytest.raises(NetworkError):
            workload_from_spec({"kind": "flood", "period": 3})


class TestStaticParity:
    """A scenario without dynamics must reproduce a plain deployment run
    bit-for-bit — the dynamics subsystem may not perturb static behaviour."""

    PARITY_SPEC = {
        "name": "parity",
        "topology": {"kind": "grid", "width": 5, "height": 5},
        "workload": {"kind": "flood"},
        "duration_s": 20.0,
        "seed": 0,
        "spacing_m": 60.0,
    }
    # Golden counters from PR 1's scale sweep path (scale.run_one("grid", 25,
    # seed=0, duration_s=20)).  If these move, static behaviour changed.
    # GOLDEN_EVENTS was re-pinned (10558 -> 7745) for PR 5's run-slice
    # engine, which posts O(slices) instead of O(instructions) kernel
    # events; frames, drops, instructions, and coverage are the original
    # capture's, proving the delivery and CPU timelines did not move.
    GOLDEN_EVENTS = 7745
    GOLDEN_FRAMES = 1385
    GOLDEN_COVERAGE = 21
    GOLDEN_PRR_DROPS = 527
    GOLDEN_INSTRUCTIONS = 1819

    def test_static_scenario_matches_scale_run_one(self):
        from repro.bench import scale

        direct = scale.run_one("grid", 25, seed=0, duration_s=20.0)
        via_scenario = Scenario.from_spec(self.PARITY_SPEC).run()
        assert via_scenario["events"] == direct["events"]
        assert via_scenario["frames"] == direct["frames"]
        assert via_scenario["coverage"] == direct["coverage"]

    def test_static_scenario_matches_golden_counters(self):
        run = Scenario.from_spec(self.PARITY_SPEC).build()
        result = run.run()
        assert result["events"] == self.GOLDEN_EVENTS
        assert result["frames"] == self.GOLDEN_FRAMES
        assert result["coverage"] == self.GOLDEN_COVERAGE
        assert result["moves"] == 0
        assert result["index_rebuilds"] == 0
        # PR 5's delivery cache and run-slice engine must not move a single
        # loss draw or executed instruction on the committed baseline.
        net = run.net
        assert net.channel.prr_drops == self.GOLDEN_PRR_DROPS
        assert (
            sum(n.middleware.engine.instructions_executed for n in net.all_nodes())
            == self.GOLDEN_INSTRUCTIONS
        )
        assert net.channel.link_cache.cache_hits > net.channel.link_cache.cache_misses

    def test_static_run_with_expiry_enabled_is_bit_identical(self):
        """PR 4's golden: beacon-driven expiry is *always* armed, and on a
        static, churn-free deployment it must be a perfect no-op — the same
        counters as the PR 3 baselines, with zero evictions, for the default
        ``k`` and a loose one alike."""
        for expiry_intervals in (3, 6):
            spec = dict(self.PARITY_SPEC)
            spec["expiry_intervals"] = expiry_intervals
            run = Scenario.from_spec(spec).build()
            result = run.run()
            assert result["events"] == self.GOLDEN_EVENTS, expiry_intervals
            assert result["frames"] == self.GOLDEN_FRAMES, expiry_intervals
            assert result["coverage"] == self.GOLDEN_COVERAGE, expiry_intervals
            for node in run.net.all_nodes():
                acquaintances = node.beacons.acquaintances
                assert acquaintances.expirations == 0  # nothing ever went stale
                assert acquaintances.timeout == expiry_intervals * node.beacons.period

    def test_dynamic_scenario_differs_from_static(self):
        static = Scenario.from_spec(mini("s", "flood", duration_s=10.0)).run()
        mobile = Scenario.from_spec(
            mini(
                "m",
                "flood",
                {"mobility": {"model": "random_waypoint", "speed": [2.0, 5.0]}},
                duration_s=10.0,
            )
        ).run()
        assert mobile["moves"] > 0
        assert (static["events"], static["frames"]) != (mobile["events"], mobile["frames"])


class TestWorkloads:
    def test_tracker_installs_samplers_and_chaser(self):
        run = Scenario.from_spec(mini("t", {"kind": "tracker"}, duration_s=3.0)).build()
        census = agent_census(run.net)
        assert census.get("smp", 0) == 16  # one sampler per node
        assert census.get("chs", 0) == 1
        result = run.run()
        assert result["coverage"] > 0  # samplers published readings
        assert result["samplers_alive"] > 0

    def test_habitat_monitors_every_node(self):
        result = Scenario.from_spec(mini("h", {"kind": "habitat"}, duration_s=5.0)).run()
        assert result["monitors_alive"] == 16
        assert result["coverage"] > 0

    def test_mixed_tenant_shares_the_network(self):
        result = Scenario.from_spec(
            mini("mx", {"kind": "mixed", "ignite_s": 10.0}, duration_s=30.0)
        ).run()
        assert result["monitors_alive"] + result["monitors_freed"] == 16
        assert result["coverage"] > 0  # the detector flood spread
        assert result["habitat_samples"] > 0
        assert result["fire_alerts"] > 0  # the fire was noticed

    def test_churny_habitat_keeps_running(self):
        result = Scenario.from_spec(
            mini(
                "ch",
                {"kind": "habitat"},
                {"churn": {"model": "lifetimes", "mtbf_s": 5.0, "mttr_s": 2.0}},
                duration_s=20.0,
            )
        ).run()
        assert result["fails"] > 0
        assert result["coverage"] > 0


class TestScenarioBench:
    def test_sweep_writes_json_and_never_rebuilds(self, tmp_path):
        json_path = str(tmp_path / "BENCH_scenarios.json")
        specs = [
            mini("mini-static", "flood"),
            mini(
                "mini-mobile",
                "flood",
                {"mobility": {"model": "random_waypoint", "speed": [1.0, 3.0]}},
            ),
            mini(
                "mini-churn",
                "habitat",
                {"churn": {"model": "lifetimes", "mtbf_s": 3.0, "mttr_s": 1.0}},
            ),
            mini("mini-mixed", {"kind": "mixed", "ignite_s": 2.0}),
        ]
        table = bench_scenarios.run_scenarios(specs, json_path=json_path)
        assert len(table.rows) == 4
        payload = json.loads((tmp_path / "BENCH_scenarios.json").read_text())
        assert [row["scenario"] for row in payload["rows"]] == [
            "mini-static",
            "mini-mobile",
            "mini-churn",
            "mini-mixed",
        ]
        for row in payload["rows"]:
            assert row["index_rebuilds"] == 0
            assert {"events", "frames", "moves", "fails", "coverage"} <= set(row)
        mobile_row = payload["rows"][1]
        assert mobile_row["moves"] > 0

    def test_cli_scenario_subcommand(self, tmp_path, capsys):
        code = bench_main(
            [
                "scenario",
                "--scenarios",
                "static-flood",
                "--duration",
                "3",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static-flood" in out
        assert (tmp_path / "BENCH_scenarios.json").exists()

    def test_cli_rejects_empty_scenario_list(self):
        with pytest.raises(SystemExit):
            bench_main(["scenario", "--scenarios", " , "])

    def test_cli_explicit_seed_overrides_spec_seeds(self, tmp_path, capsys):
        # mobile-flood-400's spec pins seed 11; an *explicit* --seed (even 0)
        # must win over it, while omitted flags leave spec values alone.
        code = bench_main(
            [
                "scenario",
                "--scenarios",
                "static-flood",
                "--seed",
                "0",
                "--duration",
                "2",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "BENCH_scenarios.json").read_text())
        assert payload["seed"] == 0  # recorded as an override, not dropped
        assert payload["duration_s"] == 2.0


@pytest.mark.slow
class TestBuiltinBattery:
    """The full default battery at short duration: every builtin must run."""

    def test_all_builtins_run(self, tmp_path):
        table = bench_scenarios.run_scenarios(
            DEFAULT_SCENARIOS,
            duration_s=6.0,
            json_path=str(tmp_path / "BENCH_scenarios.json"),
        )
        assert len(table.rows) == len(DEFAULT_SCENARIOS)
        payload = json.loads((tmp_path / "BENCH_scenarios.json").read_text())
        by_name = {row["scenario"]: row for row in payload["rows"]}
        assert by_name["mobile-flood-400"]["nodes"] == 400
        assert by_name["mobile-flood-400"]["moves"] > 0
        assert by_name["mobile-flood-400"]["index_rebuilds"] == 0
