"""Smoke tests for the benchmark harness (fast, reduced run counts)."""

import pytest

from repro.bench import figures, memory_report
from repro.bench.ablations import run_ablation_code_blocks
from repro.bench.cli import main
from repro.bench.reporting import Table, mean, median


class TestReporting:
    def test_table_render_and_columns(self):
        table = Table("tst", "demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 100.0)
        table.add_note("a note")
        text = table.render()
        assert "tst: demo" in text
        assert "2.500" in text
        assert "note: a note" in text
        assert table.column("a") == [1, "x"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_table_save(self, tmp_path):
        table = Table("tst", "demo", ["a"])
        table.add_row(1)
        path = table.save(str(tmp_path))
        assert open(path).read().startswith("== tst")

    def test_median_and_mean(self):
        assert median([]) == 0.0
        assert median([3.0]) == 3.0
        assert median([1.0, 9.0]) == 5.0
        assert median([1.0, 2.0, 9.0]) == 2.0
        assert mean([2.0, 4.0]) == 3.0
        assert mean([]) == 0.0


class TestStaticHarnesses:
    def test_fig5_structure(self):
        table = figures.run_fig5()
        types = table.column("type")
        assert types == ["state", "code", "heap", "stack", "reaction", "commit"]

    def test_fig7_covers_paper_rows(self):
        table = figures.run_fig7()
        assert len(table.rows) == len(figures.PAPER_OPCODES)

    def test_memory_report_totals(self):
        table = memory_report.run_memory()
        totals = {row[0]: row for row in table.rows}
        assert totals["TOTAL"][1] == memory_report.PAPER_DATA_BYTES

    def test_code_block_ablation_table(self):
        table = run_ablation_code_blocks()
        assert 22 in table.column("block B")


class TestDynamicHarnessesSmoke:
    def test_fig12_small(self):
        table = figures.run_fig12(repetitions=1, seed=9)
        measured = dict(zip(table.column("opcode"), table.column("measured")))
        assert measured["loc"] < measured["out"]

    def test_fig11_single_sample(self):
        table = figures.run_fig11(samples=2, seed=9)
        assert len(table.rows) == 7

    def test_migration_point_single_run(self):
        data = figures.run_migration_vs_remote(runs=2, seed=9, hops=(1,))
        assert 0.0 <= data["smove"][1]["reliability"] <= 1.0
        assert 0.0 <= data["rout"][1]["reliability"] <= 1.0


class TestCli:
    def test_cli_static_experiment(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_cli_saves_results(self, tmp_path, capsys):
        assert main(["memory", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "memory.txt").exists()

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_cli_runs_flag(self, capsys):
        assert main(["fig11", "--runs", "2", "--seed", "3"]) == 0
        assert "fig11" in capsys.readouterr().out


class TestScaleSweep:
    def test_run_one_measures_a_deployment(self):
        from repro.bench.scale import run_one

        result = run_one("grid", 25, seed=1, duration_s=5.0)
        assert result["nodes"] == 25
        assert result["frames"] > 0
        assert result["events"] > 0

    def test_cli_scale_writes_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "scale",
                    "--nodes",
                    "9",
                    "--topologies",
                    "grid,random",
                    "--duration",
                    "3",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "scale" in capsys.readouterr().out
        import json

        payload = json.loads((tmp_path / "BENCH_scale.json").read_text())
        assert {row["topology"] for row in payload["rows"]} == {"grid", "random"}
        import sys

        # peak_rss_kb degrades to 0 only where getrusage is missing (Windows).
        floor = 0 if sys.platform == "win32" else 1
        assert all(row["peak_rss_kb"] >= floor for row in payload["rows"])


class TestKernelBench:
    def test_kernel_bench_exercises_reuse_and_compaction(self, tmp_path):
        import json

        from repro.bench.perf import run_kernel_bench

        json_path = str(tmp_path / "BENCH_kernel.json")
        table = run_kernel_bench(json_path=json_path)
        rows = {row["case"]: row for row in json.loads(open(json_path).read())["rows"]}
        assert rows["periodic-chains"]["handle_reuses"] > 0
        assert rows["timer-churn"]["compactions"] > 0
        assert rows["cancel-heavy"]["compactions"] > 0
        assert all(row["events_per_s"] > 0 for row in rows.values())
        assert table.column("case") == list(rows)

    def test_cli_kernel_subcommand(self, tmp_path, capsys):
        assert main(["kernel", "--out", str(tmp_path)]) == 0
        assert "kernel" in capsys.readouterr().out
        assert (tmp_path / "BENCH_kernel.json").exists()


class TestFanoutBench:
    def test_run_one_measures_both_delivery_paths(self):
        from repro.bench.fanout import run_one

        row = run_one(25, "dense", seed=1, reps=40)
        # All-in-range: everyone but the hub hears the hub.
        assert row["mean_hearers"] == 24
        assert row["receptions"] > 0
        assert row["events_per_s"] > 0
        assert row["scalar_events_per_s"] > 0
        assert row["speedup"] > 0

    def test_cli_fanout_writes_compare_compatible_json(self, tmp_path, capsys):
        import json

        assert main(["fanout", "--nodes", "16", "--out", str(tmp_path)]) == 0
        assert "fanout" in capsys.readouterr().out
        payload = json.loads((tmp_path / "BENCH_fanout.json").read_text())
        cases = [row["case"] for row in payload["rows"]]
        # Three row families share the artifact: fan-out sweep cells,
        # carrier-sense cells, and the break-even audience ladder.
        assert cases[:3] == ["16n-sparse", "16n-mid", "16n-dense"]
        assert cases[3:6] == ["16n-sparse-sense", "16n-mid-sense", "16n-dense-sense"]
        from repro.bench.fanout import BREAK_EVEN_AUDIENCES

        assert cases[6:] == [f"breakeven-{n}h" for n in BREAK_EVEN_AUDIENCES]
        assert len(cases) == len(set(cases))  # "case" stays a unique row key
        # The gate keys on "case" and reads "events_per_s" — the same row
        # identity contract `bench compare` matches on.
        assert all(row["events_per_s"] > 0 for row in payload["rows"])
        assert all(
            row["scalar_events_per_s"] > 0 and row["speedup"] > 0
            for row in payload["rows"]
            if row["case"].endswith("-sense")
        )
        from repro.bench.compare import compare_artifacts

        path = str(tmp_path / "BENCH_fanout.json")
        _, regressions = compare_artifacts(path, path, max_drop_pct=20.0)
        assert regressions == []


class TestProfileSubcommand:
    def test_profile_writes_top_n_table(self, tmp_path, capsys):
        import json

        spec = {
            "name": "mini-profile",
            "topology": {"kind": "grid", "width": 4, "height": 4},
            "workload": {"kind": "flood"},
            "duration_s": 2.0,
            "spacing_m": 60.0,
        }
        spec_path = tmp_path / "mini.json"
        spec_path.write_text(json.dumps(spec))
        assert main(["profile", str(spec_path), "--top", "5", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mini-profile" in out
        assert "cumulative" in out  # pstats table made it out
        report = (tmp_path / "profile_mini-profile.txt").read_text()
        assert "events_per_s" in report
        assert "handle_reuses" in report  # kernel stats ride along
        # The one-line summary row: top-3 cumulative functions, greppable in
        # PR diffs of the committed profile artifacts.
        top_line = [line for line in report.splitlines() if line.startswith("top3: ")]
        assert len(top_line) == 1
        assert top_line[0].count(":") >= 3  # "top3:" plus module:function entries


class TestCompareGate:
    def _write(self, path, rows, experiment="scale"):
        import json

        path.write_text(json.dumps({"experiment": experiment, "rows": rows}))
        return str(path)

    def test_within_budget_passes(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json",
            [{"topology": "grid", "nodes": 25, "events_per_s": 1000, "peak_rss_kb": 90}],
        )
        new = self._write(
            tmp_path / "new.json",
            [{"topology": "grid", "nodes": 25, "events_per_s": 900, "peak_rss_kb": 95}],
        )
        assert main(["compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "grid/25" in out
        assert "-10.0%" in out
        assert "no throughput regressions" in out

    def test_regression_beyond_budget_fails(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json",
            [{"topology": "grid", "nodes": 25, "events_per_s": 1000}],
        )
        new = self._write(
            tmp_path / "new.json",
            [{"topology": "grid", "nodes": 25, "events_per_s": 500}],
        )
        assert main(["compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_max_drop_flag_widens_the_budget(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json",
            [{"scenario": "mobile-tracker", "events_per_s": 1000}],
        )
        new = self._write(
            tmp_path / "new.json",
            [{"scenario": "mobile-tracker", "events_per_s": 500}],
        )
        assert main(["compare", old, new, "--max-drop", "60"]) == 0
        capsys.readouterr()

    def test_new_and_missing_rows_are_reported_not_fatal(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json",
            [
                {"scenario": "a", "events_per_s": 1000},
                {"scenario": "gone", "events_per_s": 1000},
            ],
        )
        new = self._write(
            tmp_path / "new.json",
            [
                {"scenario": "a", "events_per_s": 1100},
                {"scenario": "fresh", "events_per_s": 10},
            ],
        )
        assert main(["compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "missing from NEW" in out
        assert "fresh" in out

    def test_memory_column_degrades_when_absent_from_old(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", [{"case": "periodic-chains", "events_per_s": 10}]
        )
        new = self._write(
            tmp_path / "new.json",
            [{"case": "periodic-chains", "events_per_s": 11, "peak_rss_kb": 77}],
        )
        assert main(["compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "77" in out

    def test_malformed_artifact_rejected(self, tmp_path):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": []}))
        good = self._write(tmp_path / "good.json", [{"case": "x", "events_per_s": 1}])
        with pytest.raises(ValueError):
            main(["compare", str(bad), good])


class TestTrendTable:
    def _write(self, path, rows):
        import json

        path.write_text(json.dumps({"experiment": "scale", "rows": rows}))
        return str(path)

    def test_sparkline_scales_and_marks_gaps(self):
        from repro.bench.trend import sparkline

        assert sparkline([1.0, 2.0, 3.0]) == "▁▄█"
        assert sparkline([5.0, None, 5.0]) == "▄·▄"  # flat series, one gap
        assert sparkline([None, None]) == "··"

    def test_trend_lines_up_runs_and_reports_latest_delta(self, tmp_path, capsys):
        week1 = self._write(
            tmp_path / "w1.json",
            [{"topology": "grid", "nodes": 25, "events_per_s": 1000}],
        )
        week2 = self._write(
            tmp_path / "w2.json",
            [
                {"topology": "grid", "nodes": 25, "events_per_s": 1500},
                {"topology": "grid", "nodes": 400, "events_per_s": 800},
            ],
        )
        week3 = self._write(
            tmp_path / "w3.json",
            [
                {"topology": "grid", "nodes": 25, "events_per_s": 1200},
                {"topology": "grid", "nodes": 400, "events_per_s": 880},
            ],
        )
        assert main(["trend", week1, week2, week3]) == 0
        out = capsys.readouterr().out
        assert "over 3 runs" in out
        grid25 = next(line for line in out.splitlines() if line.startswith("grid/25"))
        assert "1000" in grid25 and "1500" in grid25 and "1200" in grid25
        assert "-20.0%" in grid25  # latest step: 1500 -> 1200
        assert "▁█" in grid25.replace(" ", "")[-5:]  # the sparkline rides along
        grid400 = next(line for line in out.splitlines() if line.startswith("grid/400"))
        assert "+10.0%" in grid400
        assert "·" in grid400  # absent from week 1: a gap, not an error

    def test_trend_rejects_mixed_artifact_kinds(self, tmp_path):
        scale = self._write(
            tmp_path / "s.json", [{"topology": "grid", "nodes": 25, "events_per_s": 1}]
        )
        kernel = tmp_path / "k.json"
        import json

        kernel.write_text(
            json.dumps(
                {"experiment": "kernel", "rows": [{"case": "x", "events_per_s": 1}]}
            )
        )
        with pytest.raises(ValueError):
            main(["trend", scale, str(kernel)])
