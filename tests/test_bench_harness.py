"""Smoke tests for the benchmark harness (fast, reduced run counts)."""

import pytest

from repro.bench import figures, memory_report
from repro.bench.ablations import run_ablation_code_blocks
from repro.bench.cli import main
from repro.bench.reporting import Table, mean, median


class TestReporting:
    def test_table_render_and_columns(self):
        table = Table("tst", "demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 100.0)
        table.add_note("a note")
        text = table.render()
        assert "tst: demo" in text
        assert "2.500" in text
        assert "note: a note" in text
        assert table.column("a") == [1, "x"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_table_save(self, tmp_path):
        table = Table("tst", "demo", ["a"])
        table.add_row(1)
        path = table.save(str(tmp_path))
        assert open(path).read().startswith("== tst")

    def test_median_and_mean(self):
        assert median([]) == 0.0
        assert median([3.0]) == 3.0
        assert median([1.0, 9.0]) == 5.0
        assert median([1.0, 2.0, 9.0]) == 2.0
        assert mean([2.0, 4.0]) == 3.0
        assert mean([]) == 0.0


class TestStaticHarnesses:
    def test_fig5_structure(self):
        table = figures.run_fig5()
        types = table.column("type")
        assert types == ["state", "code", "heap", "stack", "reaction", "commit"]

    def test_fig7_covers_paper_rows(self):
        table = figures.run_fig7()
        assert len(table.rows) == len(figures.PAPER_OPCODES)

    def test_memory_report_totals(self):
        table = memory_report.run_memory()
        totals = {row[0]: row for row in table.rows}
        assert totals["TOTAL"][1] == memory_report.PAPER_DATA_BYTES

    def test_code_block_ablation_table(self):
        table = run_ablation_code_blocks()
        assert 22 in table.column("block B")


class TestDynamicHarnessesSmoke:
    def test_fig12_small(self):
        table = figures.run_fig12(repetitions=1, seed=9)
        measured = dict(zip(table.column("opcode"), table.column("measured")))
        assert measured["loc"] < measured["out"]

    def test_fig11_single_sample(self):
        table = figures.run_fig11(samples=2, seed=9)
        assert len(table.rows) == 7

    def test_migration_point_single_run(self):
        data = figures.run_migration_vs_remote(runs=2, seed=9, hops=(1,))
        assert 0.0 <= data["smove"][1]["reliability"] <= 1.0
        assert 0.0 <= data["rout"][1]["reliability"] <= 1.0


class TestCli:
    def test_cli_static_experiment(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_cli_saves_results(self, tmp_path, capsys):
        assert main(["memory", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "memory.txt").exists()

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_cli_runs_flag(self, capsys):
        assert main(["fig11", "--runs", "2", "--seed", "3"]) == 0
        assert "fig11" in capsys.readouterr().out


class TestScaleSweep:
    def test_run_one_measures_a_deployment(self):
        from repro.bench.scale import run_one

        result = run_one("grid", 25, seed=1, duration_s=5.0)
        assert result["nodes"] == 25
        assert result["frames"] > 0
        assert result["events"] > 0

    def test_cli_scale_writes_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "scale",
                    "--nodes",
                    "9",
                    "--topologies",
                    "grid,random",
                    "--duration",
                    "3",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "scale" in capsys.readouterr().out
        import json

        payload = json.loads((tmp_path / "BENCH_scale.json").read_text())
        assert {row["topology"] for row in payload["rows"]} == {"grid", "random"}
