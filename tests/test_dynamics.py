"""Dynamics subsystem: incremental channel re-keying, mobility, churn, duty.

The load-bearing contract here is the radio channel's *incremental* hearer
index: after any interleaving of moves, failures, recoveries, and departures,
the cached index must equal one rebuilt from scratch (hypothesis pins this),
and a mobility tick must never trigger a full rebuild (counter assertions pin
that — the O(degree) claim of ISSUE 2's acceptance criteria).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    DeploymentDynamics,
    DutyCycle,
    LinearDrift,
    RandomLifetimes,
    RandomWaypoint,
    ScheduledChurn,
    StaticMobility,
    dynamics_from_spec,
)
from repro.errors import NetworkError, RadioError, SimulationError
from repro.location import Location
from repro.network import SensorNetwork
from repro.radio.channel import Channel
from repro.radio.frame import Frame
from repro.radio.linkmodels import PerfectLinks
from repro.sim.kernel import Simulator
from repro.topology import GridTopology
from tests.test_radio import make_mote


# ----------------------------------------------------------------------
# Recurring kernel events
# ----------------------------------------------------------------------
class TestRecurringEvents:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        sim.every(1_000, lambda: ticks.append(sim.now))
        sim.run(duration=5_500)
        assert ticks == [1_000, 2_000, 3_000, 4_000, 5_000]

    def test_cancel_stops_the_chain(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(1_000, lambda: ticks.append(sim.now))
        sim.run(duration=2_500)
        handle.cancel()
        sim.run(duration=5_000)
        assert ticks == [1_000, 2_000]
        assert handle.cancelled

    def test_callback_may_cancel_itself(self):
        sim = Simulator()
        fired = []

        def once():
            fired.append(sim.now)
            handle.cancel()

        handle = sim.every(1_000, once)
        sim.run_until_idle()
        assert fired == [1_000]

    def test_rejects_non_positive_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0, lambda: None)
        # A sub-microsecond float would truncate to 0 and livelock the clock.
        with pytest.raises(SimulationError):
            sim.every(0.5, lambda: None)


# ----------------------------------------------------------------------
# Channel: move / detach invalidation
# ----------------------------------------------------------------------
def _channel_with_radios(positions, range_m=100.0, seed=0):
    sim = Simulator(seed=seed)
    channel = Channel(sim, PerfectLinks(range_m=range_m), grid_spacing_m=1.0)
    radios = []
    for index, (x, y) in enumerate(positions, start=1):
        radio = channel.attach(make_mote(sim, index, 0, 0), position=(x, y))
        radios.append(radio)
    return sim, channel, radios


class TestChannelMove:
    def test_move_into_range_enables_delivery(self):
        sim, channel, (a, b) = _channel_with_radios([(0, 0), (500, 0)])
        got = []
        b.set_receive_callback(got.append)
        a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert got == []  # 500 m apart: out of range
        channel.move(2, (50.0, 0.0))
        a.send(Frame(1, 2, 0x10, b"y"))
        sim.run_until_idle()
        assert len(got) == 1

    def test_move_out_of_range_stops_delivery(self):
        sim, channel, (a, b) = _channel_with_radios([(0, 0), (50, 0)])
        got = []
        b.set_receive_callback(got.append)
        a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert len(got) == 1
        channel.move(2, (500.0, 0.0))
        a.send(Frame(1, 2, 0x10, b"y"))
        sim.run_until_idle()
        assert len(got) == 1  # stale index would have delivered again

    def test_move_does_not_rebuild_the_index(self):
        positions = [(40.0 * i, 40.0 * j) for i in range(10) for j in range(10)]
        sim, channel, radios = _channel_with_radios(positions)
        for radio in radios:
            channel.hearers(radio)  # warm the whole index
        baseline = channel.full_invalidations
        for step in range(1, 21):
            channel.move(1 + step % len(radios), (13.0 * step, 7.0 * step))
        assert channel.full_invalidations == baseline
        assert channel.index_moves == 20

    def test_move_same_position_is_a_noop(self):
        sim, channel, radios = _channel_with_radios([(0, 0), (50, 0)])
        channel.hearers(radios[0])
        channel.move(1, (0.0, 0.0))
        assert channel.index_moves == 0

    def test_move_unknown_mote_rejected(self):
        sim, channel, _ = _channel_with_radios([(0, 0)])
        with pytest.raises(RadioError):
            channel.move(99, (1.0, 1.0))

    def test_detach_stops_both_directions(self):
        sim, channel, (a, b, c) = _channel_with_radios([(0, 0), (50, 0), (80, 0)])
        got_b, got_c = [], []
        b.set_receive_callback(got_b.append)
        c.set_receive_callback(got_c.append)
        channel.hearers(a)  # warm a's hearer list (contains b and c)
        channel.detach(2)
        a.send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert got_b == []  # detached radio no longer hears
        assert len(got_c) == 1  # bystander still does
        assert channel.radio_for(2) is None
        with pytest.raises(RadioError):
            channel.detach(2)

    def test_detached_radio_cannot_send(self):
        sim, channel, (a, b) = _channel_with_radios([(0, 0), (50, 0)])
        channel.detach(1)
        outcomes = []
        a.send(Frame(1, 2, 0x10, b"x"), outcomes.append)
        sim.run_until_idle()
        assert outcomes == [False]

    def test_unbounded_link_model_falls_back_to_full_invalidation(self):
        class Everywhere:
            def in_range(self, src, dst):
                return True

            def prr(self, src, dst):
                return 1.0

        sim = Simulator()
        channel = Channel(sim, Everywhere(), grid_spacing_m=1.0)
        a = channel.attach(make_mote(sim, 1, 0, 0), position=(0.0, 0.0))
        b = channel.attach(make_mote(sim, 2, 1, 0), position=(1.0, 0.0))
        assert channel.hearers(a) == [b]
        before = channel.full_invalidations
        channel.move(2, (9000.0, 0.0))
        assert channel.full_invalidations == before + 1
        assert channel.hearers(a) == [b]  # still audible: infinite reach


# ----------------------------------------------------------------------
# Property: incremental index == index rebuilt from scratch
# ----------------------------------------------------------------------
RANGE_M = 2.5

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("move"),
            st.integers(min_value=0, max_value=11),
            st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
            st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
        ),
        st.tuples(st.just("fail"), st.integers(min_value=0, max_value=11)),
        st.tuples(st.just("recover"), st.integers(min_value=0, max_value=11)),
        st.tuples(st.just("detach"), st.integers(min_value=0, max_value=11)),
        st.tuples(st.just("query"), st.integers(min_value=0, max_value=11)),
    ),
    min_size=0,
    max_size=40,
)


class TestIncrementalIndexProperty:
    @given(ops)
    @settings(max_examples=120, deadline=None)
    def test_index_matches_scratch_rebuild_after_any_interleaving(self, operations):
        positions = [(1.5 * (i % 4), 1.5 * (i // 4)) for i in range(12)]
        sim, channel, radios = _channel_with_radios(positions, range_m=RANGE_M)
        model = channel.link_model
        for radio in radios:
            channel.hearers(radio)  # start from a fully-warm index
        for op in operations:
            mote_id = op[1] + 1
            radio = channel.radio_for(mote_id)
            if op[0] == "move" and radio is not None:
                channel.move(mote_id, (op[2], op[3]))
            elif op[0] == "fail" and radio is not None:
                radio.enabled = False
            elif op[0] == "recover" and radio is not None:
                radio.enabled = True
            elif op[0] == "detach" and radio is not None:
                channel.detach(mote_id)
            elif op[0] == "query" and radio is not None:
                channel.hearers(radio)  # interleave cache (re)population

        # The incremental index must agree with brute force over live radios…
        for radio in channel.radios:
            expected = sorted(
                other.mote.id
                for other in channel.radios
                if other is not radio and model.in_range(radio.position, other.position)
            )
            assert sorted(r.mote.id for r in channel.hearers(radio)) == expected

        # …and with itself after a from-scratch rebuild (order included).
        incremental = {r.mote.id: list(channel.hearers(r)) for r in channel.radios}
        channel.invalidate_neighbor_index()
        for radio in channel.radios:
            assert channel.hearers(radio) == incremental[radio.mote.id]


# ----------------------------------------------------------------------
# The deployment-level driver
# ----------------------------------------------------------------------
def _grid_net(width=4, height=4, seed=0, **kwargs):
    return SensorNetwork(
        GridTopology(width, height),
        seed=seed,
        base_station=False,
        spacing_m=60.0,
        **kwargs,
    )


class TestDeploymentDynamics:
    def test_idle_driver_schedules_nothing(self):
        net = _grid_net()
        pending = net.sim.pending_events
        dynamics = dynamics_from_spec(net, None)
        assert dynamics.idle
        dynamics.start()
        assert net.sim.pending_events == pending

    def test_static_mobility_spec_stays_idle(self):
        net = _grid_net()
        dynamics = dynamics_from_spec(net, {"mobility": {"model": "static"}})
        assert dynamics.idle

    def test_mobility_moves_nodes_inside_bounds(self):
        net = _grid_net()
        start = {loc: net.position_of(loc) for loc in (Location(1, 1), Location(4, 4))}
        dynamics = DeploymentDynamics(
            net, mobility=RandomWaypoint(speed=(5.0, 10.0), pause_s=0.0), tick_s=1.0
        ).start()
        net.run(30.0)
        assert dynamics.moves_applied > 0
        moved = 0
        xmin, ymin, xmax, ymax = dynamics.bounds
        for location in start:
            x, y = net.position_of(location)
            assert xmin <= x <= xmax and ymin <= y <= ymax
            if (x, y) != start[location]:
                moved += 1
        assert moved > 0

    def test_same_seed_same_trajectory(self):
        def final_positions():
            net = _grid_net(seed=7)
            DeploymentDynamics(
                net, mobility=RandomWaypoint(speed=(1.0, 3.0)), tick_s=1.0
            ).start()
            net.run(20.0)
            return [net.position_of(loc) for loc in sorted(net.topology.locations())]

        assert final_positions() == final_positions()

    def test_linear_drift_reflects_at_bounds(self):
        net = _grid_net(2, 2)
        dynamics = DeploymentDynamics(
            net, mobility=LinearDrift(velocity=(40.0, 0.0)), tick_s=1.0
        ).start()
        net.run(120.0)
        xmin, _, xmax, _ = dynamics.bounds
        for location in net.topology.locations():
            x, _ = net.position_of(location)
            assert xmin <= x <= xmax

    def test_mobile_fraction_selects_subset(self):
        net = _grid_net()
        dynamics = DeploymentDynamics(
            net, mobility=RandomWaypoint(), mobile=0.25, tick_s=1.0
        )
        assert len(dynamics.mobile_nodes) == 4  # 25% of 16
        everyone = DeploymentDynamics(_grid_net(), mobility=RandomWaypoint(), mobile=1)
        assert len(everyone.mobile_nodes) == 16  # integer fraction accepted

    def test_external_detach_does_not_crash_mobility(self):
        net = _grid_net()
        dynamics = DeploymentDynamics(
            net, mobility=RandomWaypoint(speed=(1.0, 3.0), pause_s=0.0), tick_s=1.0
        ).start()
        net.detach_node((2, 2))  # departure the driver did not orchestrate
        net.run(5.0)
        assert dynamics.moves_applied > 0  # the rest of the field kept moving

    def test_scheduled_churn_fails_recovers_detaches(self):
        net = _grid_net(3, 3)
        DeploymentDynamics(
            net,
            churn=ScheduledChurn(
                [
                    (1.0, "fail", (1, 1)),
                    (3.0, "recover", (1, 1)),
                    (2.0, "detach", (3, 3)),
                ]
            ),
            tick_s=0.5,
        ).start()
        net.run(1.6)
        assert not net.node_up((1, 1))
        net.run(2.0)  # past t=3: recovered, and (3,3) has departed
        assert net.node_up((1, 1))
        assert not net.node_up((3, 3))
        with pytest.raises(NetworkError):
            net.move_node((3, 3), (0.0, 0.0))

    def test_detach_node_is_a_full_departure(self):
        from repro.apps import habitat_monitor

        net = _grid_net(3, 3)
        target = Location(3, 3)
        net.middleware(target).inject(habitat_monitor())
        node = net.nodes[target]
        net.detach_node(target)
        assert target not in net.nodes  # iteration/metrics no longer see it
        assert node.middleware.agents() == []  # agents died with the hardware
        beacons_before = node.beacons.beacons_sent
        net.run(30.0)
        assert node.beacons.beacons_sent == beacons_before  # no phantom timer

    def test_radio_bytes_monotonic_across_detach(self):
        net = _grid_net(3, 3)
        net.run(25.0)  # let beacons put traffic on the air
        before = net.radio_bytes()
        assert before > 0
        net.detach_node((2, 2))
        assert net.radio_bytes() == before  # departed bytes are not forgotten
        net.run(25.0)
        assert net.radio_bytes() > before

    def test_scheduled_churn_replays_when_reused(self):
        model = ScheduledChurn([(1.0, "fail", (1, 1))])
        for _ in range(2):  # the same model driving two fresh deployments
            net = _grid_net(2, 2)
            dynamics = DeploymentDynamics(net, churn=model, tick_s=0.5).start()
            net.run(2.0)
            assert dynamics.fails == 1

    def test_random_lifetimes_drains_every_due_transition(self):
        import random

        model = RandomLifetimes(mtbf_s=0.1, mttr_s=0.1)
        rng = random.Random(1)
        model.start([Location(1, 1)], rng)
        events = model.events(10.0, rng)  # ~100 transitions due in one tick
        assert len(events) > 5  # one-per-tick would report exactly 1
        operations = [op for _, op in events]
        assert operations[0] == "fail"
        assert all(a != b for a, b in zip(operations, operations[1:]))
        assert model._next[0][0] > 10.0  # the schedule caught up past "now"

    def test_random_lifetimes_churn_cycles_nodes(self):
        net = _grid_net()
        dynamics = DeploymentDynamics(
            net, churn=RandomLifetimes(mtbf_s=10.0, mttr_s=5.0), tick_s=1.0
        ).start()
        net.run(60.0)
        assert dynamics.fails > 0
        assert dynamics.recoveries > 0

    def test_duty_cycle_toggles_radios(self):
        net = _grid_net()
        dynamics = DeploymentDynamics(
            net, duty_cycle=DutyCycle(period_s=4.0, on_fraction=0.5), tick_s=1.0
        ).start()
        net.run(20.0)
        assert dynamics.radio_toggles > 0
        net.sim.run_until_idle()  # drain; all radios settle per their phase

    def test_duty_tick_is_o_changes_not_o_field(self):
        """The acceptance criterion: a tick with no due toggles does zero
        per-node work — only the calendar peek."""
        net = _grid_net()  # 16 nodes
        dynamics = DeploymentDynamics(
            net,
            duty_cycle=DutyCycle(period_s=10.0, on_fraction=0.5, stagger=False),
            tick_s=0.5,
        ).start()
        net.run(0.6)  # first tick: the whole field is due once (phase 0)
        assert dynamics.duty_evaluations == 16
        net.run(4.0)  # ticks 1.0 .. 4.5: nothing due before the 5 s boundary
        assert dynamics.duty_evaluations == 16  # zero evaluations on quiet ticks
        assert dynamics.radio_toggles == 0
        net.run(1.0)  # the 5 s lights-out boundary passes
        assert dynamics.duty_evaluations == 32
        assert dynamics.radio_toggles == 16  # everyone went dark, exactly once

    def test_duty_evaluations_scale_with_transitions_not_ticks(self):
        net = _grid_net()  # 16 nodes, staggered phases
        dynamics = DeploymentDynamics(
            net, duty_cycle=DutyCycle(period_s=10.0, on_fraction=0.5), tick_s=0.1
        ).start()
        net.run(30.0)  # 300 ticks; an O(field) sweep would do 16 * 300 work
        transitions = 16 * 2 * 3  # 2 boundaries per node per 10 s period
        assert dynamics.duty_evaluations <= transitions + 16  # + initial sync
        assert dynamics.duty_evaluations < 16 * 300 / 10  # nowhere near O(field)

    def test_duty_calendar_matches_awake_predicate_every_tick(self):
        """Equivalence with the old full sweep: after every tick each node's
        radio equals alive && awake — the invariant the O(field) version
        enforced by brute force."""
        net = _grid_net(seed=5)
        duty = DutyCycle(period_s=3.0, on_fraction=0.4)
        dynamics = DeploymentDynamics(net, duty_cycle=duty, tick_s=0.5).start()
        toggles = 0
        for _ in range(40):
            net.run(0.5)
            now_s = net.sim.now_seconds
            for location in net.topology.locations():
                assert net.node_up(location) == duty.awake(location, now_s)
            toggles = dynamics.radio_toggles
        assert toggles > 0

    def test_duty_calendar_composes_with_churn(self):
        net = _grid_net(seed=2)
        duty = DutyCycle(period_s=4.0, on_fraction=0.75)
        dynamics = DeploymentDynamics(
            net,
            churn=RandomLifetimes(mtbf_s=8.0, mttr_s=4.0),
            duty_cycle=duty,
            tick_s=0.5,
        ).start()
        net.run(40.0)
        assert dynamics.fails > 0 and dynamics.recoveries > 0
        # A dead node stays down regardless of its duty phase; a live one
        # follows the duty predicate.
        now_s = net.sim.now_seconds
        for location in net.topology.locations():
            expected = dynamics._alive[location] and duty.awake(location, now_s)
            assert net.node_up(location) == expected

    def test_duty_calendar_drops_departed_nodes(self):
        net = _grid_net()
        dynamics = DeploymentDynamics(
            net, duty_cycle=DutyCycle(period_s=2.0, on_fraction=0.5), tick_s=0.5
        ).start()
        net.run(1.0)
        net.detach_node((2, 2))  # departure the driver did not orchestrate
        net.run(10.0)  # calendar pops for (2,2) must be dropped, not re-armed
        assert Location(2, 2) in dynamics._gone
        assert all(loc != Location(2, 2) for _, loc in dynamics._duty_calendar)

    def test_failed_node_receives_nothing(self):
        net = _grid_net(2, 2)
        radio = net.channel.radio_for(net.topology.mote_id(Location(1, 1)))
        net.fail_node((1, 1))
        before = radio.frames_received
        net.run(30.0)  # beacons keep flying among the other three
        assert radio.frames_received == before
        net.recover_node((1, 1))
        net.run(30.0)
        assert radio.frames_received > before

    def test_mobility_never_rebuilds_index(self):
        net = _grid_net(10, 10)
        dynamics = DeploymentDynamics(
            net, mobility=RandomWaypoint(speed=(1.0, 4.0), pause_s=0.0), tick_s=1.0
        ).start()
        net.run(5.0)  # warm up: beacons force the index to build
        net.channel.hearers(net.channel.radios[0])  # ensure the index exists
        baseline = net.channel.full_invalidations
        moves_before = dynamics.moves_applied
        rekeys_before = net.channel.index_moves
        net.run(30.0)
        applied = dynamics.moves_applied - moves_before
        assert applied >= 100 * 25  # every node, most ticks
        # Every applied move was an incremental re-key, never a full rebuild.
        assert net.channel.index_moves - rekeys_before == applied
        assert net.channel.full_invalidations == baseline  # O(degree), not O(N)

    def test_rejects_bad_parameters(self):
        net = _grid_net(2, 2)
        with pytest.raises(NetworkError):
            DeploymentDynamics(net, tick_s=0.0)
        with pytest.raises(NetworkError):
            DeploymentDynamics(net, mobility=RandomWaypoint(), mobile=2.0)
        with pytest.raises(NetworkError):
            DeploymentDynamics(net, mobility=RandomWaypoint(), mobile=[(9, 9)])
        with pytest.raises(NetworkError):
            RandomWaypoint(speed=(0.0, 0.0))
        with pytest.raises(NetworkError):
            DutyCycle(on_fraction=0.0)
        with pytest.raises(NetworkError):
            RandomLifetimes(mtbf_s=0.0)
        with pytest.raises(NetworkError):
            ScheduledChurn([(1.0, "explode", (1, 1))])
        with pytest.raises(NetworkError):  # typo'd node fails at build time
            DeploymentDynamics(net, churn=ScheduledChurn([(1.0, "fail", (9, 9))]))

    def test_spec_round_trip(self):
        net = _grid_net()
        dynamics = dynamics_from_spec(
            net,
            {
                "mobility": {"model": "random_waypoint", "speed": [0.5, 2.0]},
                "mobile_fraction": 0.5,
                "churn": {"model": "lifetimes", "mtbf_s": 30, "mttr_s": 5},
                "duty_cycle": {"period_s": 4.0, "on_fraction": 0.75},
                "tick_s": 0.5,
            },
        )
        assert isinstance(dynamics.mobility, RandomWaypoint)
        assert isinstance(dynamics.churn, RandomLifetimes)
        assert dynamics.duty_cycle is not None
        assert len(dynamics.mobile_nodes) == 8
        # "mobile" also accepts the numeric-fraction form the API accepts.
        numeric = dynamics_from_spec(
            _grid_net(), {"mobility": {"model": "random_waypoint"}, "mobile": 0.5}
        )
        assert len(numeric.mobile_nodes) == 8

    def test_spec_rejects_unknown_keys(self):
        net = _grid_net(2, 2)
        with pytest.raises(NetworkError):
            dynamics_from_spec(net, {"mobilty": {}})
        with pytest.raises(NetworkError):
            dynamics_from_spec(net, {"mobility": {"model": "warp"}})
        with pytest.raises(NetworkError):
            dynamics_from_spec(net, {"churn": {"model": "lifetimes", "mtbf": 3}})
        with pytest.raises(NetworkError):
            dynamics_from_spec(net, {"churn": {"model": "schedule"}})
        with pytest.raises(NetworkError):  # mobile selection without mobility
            dynamics_from_spec(net, {"mobile_fraction": 0.5})
        with pytest.raises(NetworkError):
            dynamics_from_spec(
                net, {"mobility": {"model": "linear"}, "mobile": [[1, 1]], "mobile_fraction": 0.5}
            )

    def test_stop_halts_the_driver(self):
        net = _grid_net(2, 2)
        dynamics = DeploymentDynamics(net, mobility=LinearDrift((5.0, 0.0)), tick_s=1.0).start()
        net.run(3.0)
        moved = dynamics.moves_applied
        assert moved > 0
        dynamics.stop()
        net.run(5.0)
        assert dynamics.moves_applied == moved
