"""VM tuple-space semantics: out/inp/rdp, blocking in/rd, reactions, tcount."""

from repro.agilla.agent import AgentState
from repro.agilla.assembler import assemble
from repro.agilla.fields import StringField, Value
from repro.agilla.tuples import make_template, make_tuple

from tests.util import run_agent, run_to_death, single_node


def stack_values(agent):
    return [f.value for f in agent.stack if isinstance(f, Value)]


def user_tuples(net, at=(1, 1)):
    """Tuples excluding the middleware's context tuples."""
    context_tags = {"tmp", "lit", "mag", "snd", "agt"}
    result = []
    for tup in net.tuples_at(at):
        first = tup.fields[0] if tup.fields else None
        if isinstance(first, StringField) and first.text in context_tags:
            continue
        result.append(tup)
    return result


class TestOutInpRdp:
    def test_out_inserts(self):
        net = single_node()
        run_agent(net, "pushc 7\npushc 1\nout\nwait")
        assert make_tuple(Value(7)) in user_tuples(net)

    def test_out_sets_condition(self):
        net = single_node()
        agent = run_agent(net, "pushc 7\npushc 1\nout\nwait")
        assert agent.condition == 1

    def test_inp_removes_and_pushes(self):
        net = single_node()
        agent = run_agent(
            net,
            "pushc 7\npushc 1\nout\n"  # insert <7>
            "pusht VALUE\npushc 1\ninp\nwait",
        )
        assert agent.condition == 1
        # Stack now holds the tuple: field 7 then arity 1.
        assert stack_values(agent) == [7, 1]
        assert user_tuples(net) == []

    def test_inp_miss_sets_condition_zero(self):
        net = single_node()
        agent = run_agent(net, "pushn xyz\npushc 1\ninp\nwait")
        assert agent.condition == 0
        assert agent.stack == []

    def test_rdp_copies(self):
        net = single_node()
        agent = run_agent(
            net,
            "pushc 7\npushc 1\nout\npusht VALUE\npushc 1\nrdp\nwait",
        )
        assert agent.condition == 1
        assert len(user_tuples(net)) == 1  # still there

    def test_tcount(self):
        net = single_node()
        agent = run_agent(
            net,
            "pushc 1\npushc 1\nout\n"
            "pushc 2\npushc 1\nout\n"
            "pusht VALUE\npushc 1\ntcount\nwait",
        )
        assert stack_values(agent)[-1] == 2

    def test_multi_field_tuple_round_trip(self):
        net = single_node()
        agent = run_agent(
            net,
            "pushn fir\nloc\npushc 2\nout\n"  # <'fir', here>
            "pushn fir\npusht LOCATION\npushc 2\ninp\nwait",
        )
        assert agent.condition == 1
        assert agent.stack[-1] == Value(2)  # arity on top

    def test_context_tuples_present_at_boot(self):
        # Paper §2.2: sensor-availability tuples are pre-inserted.
        net = single_node()
        tags = {
            t.fields[0].text
            for t in net.tuples_at((1, 1))
            if isinstance(t.fields[0], StringField)
        }
        assert {"tmp", "lit", "mag", "snd"} <= tags

    def test_agent_context_tuple_tracks_residents(self):
        net = single_node()
        agent = run_agent(net, "wait")
        agt_template = make_template(StringField("agt"))
        counts = [
            t
            for t in net.tuples_at((1, 1))
            if t.arity == 2 and isinstance(t.fields[0], StringField)
            and t.fields[0].text == "agt"
        ]
        assert len(counts) == 1
        net.middleware((1, 1)).agent_manager.kill(agent, "test")
        counts_after = [
            t
            for t in net.tuples_at((1, 1))
            if t.arity == 2 and isinstance(t.fields[0], StringField)
            and t.fields[0].text == "agt"
        ]
        assert counts_after == []


class TestBlockingInRd:
    def test_in_blocks_until_insert(self):
        net = single_node()
        consumer = run_agent(net, "pushn key\npusht VALUE\npushc 2\nin\nwait")
        assert consumer.state == AgentState.BLOCKED_TS
        producer = run_agent(net, "pushn key\npushc 42\npushc 2\nout\nhalt")
        assert producer.state == AgentState.DEAD
        net.run_until(lambda: consumer.state == AgentState.WAIT_RXN, 5.0)
        assert consumer.condition == 1
        assert stack_values(consumer) == [42, 2]
        assert user_tuples(net) == []  # `in` removed it

    def test_rd_blocks_but_leaves_tuple(self):
        net = single_node()
        consumer = run_agent(net, "pushn key\npusht VALUE\npushc 2\nrd\nwait")
        assert consumer.state == AgentState.BLOCKED_TS
        run_agent(net, "pushn key\npushc 42\npushc 2\nout\nhalt")
        net.run_until(lambda: consumer.state == AgentState.WAIT_RXN, 5.0)
        assert consumer.condition == 1
        assert len(user_tuples(net)) == 1

    def test_in_succeeds_immediately_when_present(self):
        net = single_node()
        run_agent(net, "pushn key\npushc 1\npushc 2\nout\nhalt")
        consumer = run_agent(net, "pushn key\npusht VALUE\npushc 2\nin\nwait")
        assert consumer.state == AgentState.WAIT_RXN

    def test_two_blocked_agents_one_tuple(self):
        net = single_node()
        first = run_agent(net, "pushn key\npusht VALUE\npushc 2\nin\nwait", name="one")
        second = run_agent(net, "pushn key\npusht VALUE\npushc 2\nin\nwait", name="two")
        run_agent(net, "pushn key\npushc 5\npushc 2\nout\nhalt", name="prod")
        net.run(2.0)
        states = sorted([first.state, second.state], key=lambda s: s.value)
        # Exactly one wins the race; the other re-blocks.
        assert AgentState.BLOCKED_TS in states
        assert AgentState.WAIT_RXN in states

    def test_non_matching_insert_does_not_release(self):
        net = single_node()
        consumer = run_agent(net, "pushn key\npusht VALUE\npushc 2\nin\nwait")
        run_agent(net, "pushn oth\npushc 1\npushc 2\nout\nhalt")
        net.run(2.0)
        assert consumer.state == AgentState.BLOCKED_TS


class TestReactions:
    FIRETRACKER_STYLE = """
        pushn fir
        pusht LOCATION
        pushc 2
        pushc FIRE
        regrxn
        wait
        FIRE pop
        pushc LED_RED_ON
        putled
        wait
    """

    def test_reaction_fires_on_matching_insert(self):
        net = single_node()
        tracker = run_agent(net, self.FIRETRACKER_STYLE, name="trk")
        assert tracker.state == AgentState.WAIT_RXN
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", name="det")
        net.run(2.0)
        assert net.middleware((1, 1)).mote.leds.lit() == ["red"]

    def test_matched_tuple_lands_on_stack_above_saved_pc(self):
        net = single_node()
        source = """
            pushn fir
            pusht LOCATION
            pushc 2
            pushc HANDLER
            regrxn
            wait
            HANDLER wait
        """
        tracker = run_agent(net, source, name="trk")
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", name="det")
        net.run(2.0)
        assert tracker.state == AgentState.WAIT_RXN
        # Stack: saved PC, then tuple fields ('fir', loc), then arity 2.
        assert tracker.stack[-1] == Value(2)
        assert tracker.stack[-3] == StringField("fir")
        assert isinstance(tracker.stack[-4], Value)  # the saved PC

    def test_reaction_wakes_sleeping_agent(self):
        net = single_node()
        source = """
            pushn fir
            pusht LOCATION
            pushc 2
            pushc HANDLER
            regrxn
            pushcl 8000
            sleep
            HANDLER pushc LED_GREEN_ON
            putled
            wait
        """
        sleeper = run_agent(net, source, name="slp")
        assert sleeper.state == AgentState.SLEEPING
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", name="det")
        net.run(2.0)
        assert net.middleware((1, 1)).mote.leds.lit() == ["green"]

    def test_deregrxn_stops_firing(self):
        net = single_node()
        source = """
            pushn fir
            pusht LOCATION
            pushc 2
            pushc HANDLER
            regrxn
            pushn fir
            pusht LOCATION
            pushc 2
            deregrxn
            wait
            HANDLER pushc LED_RED_ON
            putled
            wait
        """
        agent = run_agent(net, source, name="trk")
        assert agent.condition == 1  # deregrxn found the registration
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", name="det")
        net.run(2.0)
        assert net.middleware((1, 1)).mote.leds.lit() == []

    def test_deregrxn_missing_sets_condition_zero(self):
        net = single_node()
        agent = run_agent(net, "pushn fir\npushc 1\nderegrxn\nwait")
        assert agent.condition == 0

    def test_reactions_cleaned_up_on_death(self):
        net = single_node()
        agent = run_agent(net, self.FIRETRACKER_STYLE, name="trk")
        registry = net.middleware((1, 1)).tuplespace_manager.registry
        assert len(registry) == 1
        net.middleware((1, 1)).agent_manager.kill(agent, "test")
        assert len(registry) == 0

    def test_reaction_fires_for_tuple_already_matching_on_register(self):
        # Reactions are *future-looking*: a pre-existing tuple does not fire
        # them (the agent should probe first) — matching Agilla semantics.
        net = single_node()
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", name="det")
        tracker = run_agent(net, self.FIRETRACKER_STYLE, name="trk")
        net.run(2.0)
        assert tracker.state == AgentState.WAIT_RXN
        assert net.middleware((1, 1)).mote.leds.lit() == []
