"""Unit tests for the mote hardware model (memory, LEDs, sensors, fields)."""

import pytest

from repro.errors import MemoryBudgetError
from repro.mote import (
    ADC_MAX,
    LIGHT,
    MAGNETOMETER,
    TEMPERATURE,
    ConstantField,
    Environment,
    FireField,
    HotspotField,
    MemoryLedger,
    Mote,
    MovingTargetField,
    NoisyField,
    SensorBoard,
    waypoint_path,
)
from repro.mote.leds import OP_OFF, OP_ON, OP_TOGGLE, Leds
from repro.net.addresses import Location
from repro.sim import Simulator, seconds


class TestMemoryLedger:
    def test_allocation_tracks_usage(self):
        ledger = MemoryLedger()
        ledger.allocate("TupleSpace", "arena", 600)
        ledger.allocate("ReactionRegistry", "registry", 400)
        assert ledger.ram_used == 1000
        assert ledger.ram_free == 4096 - 1000

    def test_over_budget_raises(self):
        ledger = MemoryLedger(ram_capacity=100)
        ledger.allocate("a", "x", 90)
        with pytest.raises(MemoryBudgetError):
            ledger.allocate("b", "y", 11)

    def test_negative_allocation_rejected(self):
        with pytest.raises(MemoryBudgetError):
            MemoryLedger().allocate("a", "x", -1)

    def test_free_returns_bytes(self):
        ledger = MemoryLedger()
        allocation = ledger.allocate("a", "x", 1000)
        ledger.free(allocation)
        assert ledger.ram_used == 0

    def test_by_component_aggregates(self):
        ledger = MemoryLedger()
        ledger.allocate("Agilla", "buf1", 100)
        ledger.allocate("Agilla", "buf2", 50)
        ledger.allocate("TinyOS", "stack", 200)
        by_component = ledger.ram_by_component()
        assert by_component == {"TinyOS": 200, "Agilla": 150}

    def test_code_footprint(self):
        ledger = MemoryLedger()
        ledger.record_code("AgillaEngine", 10_000)
        ledger.record_code("TupleSpaceManager", 5_000)
        assert ledger.flash_used == 15_000
        with pytest.raises(MemoryBudgetError):
            ledger.record_code("huge", 130_000)

    def test_report_mentions_components(self):
        ledger = MemoryLedger()
        ledger.allocate("TupleSpace", "arena", 600)
        assert "TupleSpace" in ledger.report()


class TestLeds:
    def test_on_off_toggle(self):
        leds = Leds()
        leds.execute((OP_ON << 3) | 0b001, now=0)
        assert leds.state == [True, False, False]
        leds.execute((OP_TOGGLE << 3) | 0b011, now=1)
        assert leds.state == [False, True, False]
        leds.execute((OP_OFF << 3) | 0b111, now=2)
        assert leds.state == [False, False, False]

    def test_set_mask(self):
        leds = Leds()
        leds.execute(0b101, now=0)  # OP_SET
        assert leds.state == [True, False, True]
        assert leds.lit() == ["red", "yellow"]

    def test_history_recorded(self):
        leds = Leds()
        leds.execute((OP_ON << 3) | 0b001, now=5)
        assert leds.history == [(5, (True, False, False))]


class TestSensors:
    def test_default_board_types(self):
        board = SensorBoard()
        assert board.has(TEMPERATURE)
        assert board.has(LIGHT)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            SensorBoard((99,))

    def test_absent_sensor_reads_zero(self):
        board = SensorBoard((TEMPERATURE,))
        env = Environment({LIGHT: ConstantField(500)})
        assert board.read(LIGHT, env, Location(1, 1), 0) == 0

    def test_reading_clamped_to_adc(self):
        board = SensorBoard()
        env = Environment({TEMPERATURE: ConstantField(5000)})
        assert board.read(TEMPERATURE, env, Location(1, 1), 0) == ADC_MAX
        env = Environment({TEMPERATURE: ConstantField(-50)})
        assert board.read(TEMPERATURE, env, Location(1, 1), 0) == 0


class TestFields:
    def test_hotspot_peak_and_background(self):
        field = HotspotField(Location(3, 3), peak=900, background=60, radius=2.0)
        assert field.sample(Location(3, 3), 0) == 900
        assert field.sample(Location(3, 1), 0) == 60  # distance 2 >= radius

    def test_fire_spreads_over_time(self):
        fire = FireField(Location(3, 3), ignition_time=0, spread_rate=1.0)
        assert fire.burning(Location(3, 3), now=0)
        assert not fire.burning(Location(5, 3), now=seconds(1))
        assert fire.burning(Location(5, 3), now=seconds(2))

    def test_fire_before_ignition_is_ambient(self):
        fire = FireField(Location(3, 3), ignition_time=seconds(10), ambient=70)
        assert fire.sample(Location(3, 3), now=0) == 70
        assert fire.radius_at(0) == 0.0

    def test_fire_max_radius_caps_growth(self):
        fire = FireField(Location(3, 3), spread_rate=1.0, max_radius=2.0)
        assert fire.radius_at(seconds(100)) == 2.0

    def test_fire_reading_exceeds_detector_threshold(self):
        # The FIREDETECTOR agent of Figure 13 uses threshold 200.
        fire = FireField(Location(3, 3), burn_value=800)
        assert fire.sample(Location(3, 3), now=seconds(1)) > 200

    def test_moving_target_follows_path(self):
        path = waypoint_path([(1.0, 1.0), (5.0, 1.0)], speed=1.0)
        field = MovingTargetField(path, peak=1000, reach=2.0)
        assert field.sample(Location(1, 1), 0) == 1000
        assert field.sample(Location(1, 1), seconds(4)) == 0.0
        assert field.sample(Location(5, 1), seconds(4)) == 1000

    def test_waypoint_path_validates(self):
        with pytest.raises(ValueError):
            waypoint_path([], speed=1.0)
        with pytest.raises(ValueError):
            waypoint_path([(0, 0)], speed=0)

    def test_noisy_field_is_deterministic_per_seed(self):
        base = ConstantField(100)
        a = NoisyField(base, 5.0, Simulator(seed=3).rng("noise"))
        b = NoisyField(base, 5.0, Simulator(seed=3).rng("noise"))
        assert a.sample(Location(1, 1), 0) == b.sample(Location(1, 1), 0)

    def test_environment_default_ambient(self):
        env = Environment()
        assert env.sample(TEMPERATURE, Location(1, 1), 0) == Environment.DEFAULT_AMBIENT


class TestMote:
    def test_mote_senses_through_environment(self):
        sim = Simulator()
        env = Environment({TEMPERATURE: ConstantField(321)})
        mote = Mote(sim, 1, Location(2, 2), env)
        assert mote.sense(TEMPERATURE) == 321

    def test_mote_has_hardware(self):
        mote = Mote(Simulator(), 1, Location(1, 1))
        assert mote.memory.ram_free > 0
        assert mote.cpu.clock_hz == 8_000_000
        timer = mote.new_timer(lambda: None)
        assert not timer.running

    def test_magnetometer_tracking_scenario(self):
        sim = Simulator()
        path = waypoint_path([(1.0, 1.0), (3.0, 1.0)], speed=1.0)
        env = Environment({MAGNETOMETER: MovingTargetField(path, reach=1.5)})
        near = Mote(sim, 1, Location(1, 1), env)
        far = Mote(sim, 2, Location(3, 1), env)
        assert near.sense(MAGNETOMETER) > far.sense(MAGNETOMETER)
