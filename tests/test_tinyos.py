"""Unit tests for the TinyOS-like task/timer substrate."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.tinyos import Cpu, TaskQueue, Timer


class TestCpu:
    def test_cycles_to_us_at_8mhz(self):
        cpu = Cpu(Simulator())
        assert cpu.cycles_to_us(8) == 1
        assert cpu.cycles_to_us(800) == 100

    def test_minimum_one_microsecond(self):
        cpu = Cpu(Simulator())
        assert cpu.cycles_to_us(1) == 1

    def test_execute_advances_busy_horizon(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.execute(800, done.append, "a")  # 100 us
        cpu.execute(800, done.append, "b")  # serialized: finishes at 200 us
        sim.run_until_idle()
        assert done == ["a", "b"]
        assert sim.now == 200
        assert cpu.busy_until == 200

    def test_work_serializes_even_across_idle_gaps(self):
        sim = Simulator()
        cpu = Cpu(sim)
        finish_times = []
        sim.schedule(50, lambda: cpu.execute(80, lambda: finish_times.append(sim.now)))
        sim.run_until_idle()
        assert finish_times == [60]  # starts at 50 (idle), takes 10 us

    def test_idle_property(self):
        sim = Simulator()
        cpu = Cpu(sim)
        assert cpu.idle
        cpu.execute(8000, lambda: None)
        assert not cpu.idle
        sim.run_until_idle()
        assert cpu.idle

    def test_cycle_accounting(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.execute(100, lambda: None)
        cpu.execute(200, lambda: None)
        assert cpu.cycles_executed == 300


class TestTaskQueue:
    def test_dispatch_overhead_added(self):
        sim = Simulator()
        queue = TaskQueue(Cpu(sim))
        queue.post(760, lambda: None)  # +40 dispatch = 800 cycles = 100 us
        sim.run_until_idle()
        assert sim.now == 100

    def test_fifo_order(self):
        sim = Simulator()
        queue = TaskQueue(Cpu(sim))
        order = []
        queue.post(10, order.append, 1)
        queue.post(10, order.append, 2)
        queue.post(10, order.append, 3)
        sim.run_until_idle()
        assert order == [1, 2, 3]

    def test_counts_tasks(self):
        sim = Simulator()
        queue = TaskQueue(Cpu(sim))
        for _ in range(5):
            queue.post(1, lambda: None)
        assert queue.tasks_posted == 5


class TestTimer:
    def test_one_shot(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(500)
        sim.run_until_idle()
        assert fired == [500]

    def test_periodic(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(100)
        sim.run(duration=350)
        timer.stop()
        assert fired == [100, 200, 300]

    def test_stop_cancels(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start_one_shot(100)
        timer.stop()
        sim.run_until_idle()
        assert fired == []

    def test_restart_replaces_pending(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(100)
        timer.start_one_shot(300)
        sim.run_until_idle()
        assert fired == [300]

    def test_running_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start_one_shot(10)
        assert timer.running
        sim.run_until_idle()
        assert not timer.running

    def test_rejects_bad_arguments(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        with pytest.raises(SimulationError):
            timer.start_one_shot(-5)
        with pytest.raises(SimulationError):
            timer.start_periodic(0)

    def test_fired_count(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start_periodic(10)
        sim.run(duration=55)
        assert timer.fired_count == 5


class TestTimerPauseResume:
    def test_pause_preserves_remaining_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(100)
        sim.run(duration=40)  # 60 us of the countdown left
        timer.pause()
        assert timer.paused and not timer.running
        sim.run(duration=500)  # frozen: nothing fires while paused
        assert fired == []
        timer.resume()
        assert timer.running and not timer.paused
        sim.run_until_idle()
        assert fired == [540 + 60]  # resumed with the 60 us remainder intact

    def test_pause_resume_periodic_continues_the_cadence(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(100)
        sim.run(duration=250)  # fired at 100, 200; next due 300
        timer.pause()
        sim.run(duration=1_000)
        timer.resume()  # 50 us left of the interrupted interval
        sim.run(duration=460)
        assert fired == [100, 200, 1_300, 1_400, 1_500, 1_600, 1_700]

    def test_pause_without_pending_is_a_noop(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.pause()
        assert not timer.paused
        timer.resume()
        assert not timer.running

    def test_double_pause_and_resume_are_idempotent(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(100)
        timer.pause()
        timer.pause()
        timer.resume()
        timer.resume()
        sim.run_until_idle()
        assert fired == [100]
        assert sim.pending_events == 0

    def test_stop_discards_a_paused_countdown(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start_one_shot(100)
        timer.pause()
        timer.stop()
        timer.resume()  # nothing to resume: stop cleared the remainder
        sim.run_until_idle()
        assert fired == []
        assert not timer.running

    def test_restart_after_pause_supersedes_the_remainder(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(100)
        timer.pause()
        timer.start_one_shot(30)  # explicit restart wins over the pause
        sim.run_until_idle()
        assert fired == [30]
        assert not timer.paused
