"""Adaptive neighborhoods: live acquaintances, healing routes, churn reactions.

The subsystem under test is PR 4's tentpole: beacon-driven acquaintance
expiry (``k`` missed intervals), freshness re-priming from overheard
traffic, recovery re-announcement, live receive filters, localization under
mobility, and neighborhood churn surfaced to agents as tuples/reactions.
Everything here runs with ``adaptive=True``; the frozen-mode controls pin
that the old deploy-time-snapshot behavior still exists where the goldens
need it.
"""

import pytest

from repro.apps import MONITOR_TAG, steward
from repro.agilla.fields import FieldType, StringField, TypeWildcard
from repro.agilla.tuples import make_template
from repro.agilla.reactions import (
    NEIGHBOR_FOUND_TAG,
    NEIGHBOR_LOST_TAG,
    NEIGHBOR_TAG,
    WAKEUP_TAG,
)
from repro.location import Location
from repro.mote import Environment, Mote
from repro.net import (
    AcquaintanceList,
    BeaconService,
    LiveNeighborFilter,
    NetworkStack,
)
from repro.net import am
from repro.network import SensorNetwork
from repro.radio import Channel, Frame, PerfectLinks
from repro.scenarios import Scenario
from repro.sim import Simulator, seconds
from repro.topology import ExplicitTopology, GridTopology


# ----------------------------------------------------------------------
# Acquaintance list: listeners, refresh, expiry accounting
# ----------------------------------------------------------------------
class TestAcquaintanceEvents:
    def _watched(self, **kwargs):
        acq = AcquaintanceList(**kwargs)
        events = []
        acq.listeners.append(lambda kind, e, prev: events.append((kind, e.mote_id, prev)))
        return acq, events

    def test_found_lost_moved_events(self):
        acq, events = self._watched(timeout=100)
        acq.update(7, Location(2, 1), now=0)
        acq.update(7, Location(2, 2), now=10)  # moved
        acq.update(7, Location(2, 2), now=20)  # refresh only: no event
        acq.evict_stale(now=200)
        assert events == [
            ("found", 7, None),
            ("moved", 7, Location(2, 1)),
            ("lost", 7, None),
        ]
        assert acq.expirations == 1

    def test_capacity_eviction_is_displacement_not_loss(self):
        """A full table pushing out its stalest entry is not beacon loss:
        the displaced neighbor is alive and will re-add itself, so the event
        kind is distinct and no phantom churn reaction should fire from it."""
        acq, events = self._watched(capacity=1)
        acq.update(1, Location(1, 1), now=0)
        acq.update(2, Location(2, 1), now=10)
        assert ("displaced", 1, None) in events
        assert ("found", 2, None) in events
        assert acq.expirations == 0  # capacity pressure is not staleness
        assert acq.displacements == 1

    def test_refresh_touches_known_senders_only(self):
        acq = AcquaintanceList(timeout=100)
        acq.update(3, Location(1, 1), now=0)
        assert acq.refresh(3, now=90)
        assert not acq.refresh(99, now=90)  # unknown: no position, no entry
        acq.evict_stale(now=150)  # 3 was refreshed at 90: survives
        assert 3 in acq
        assert acq.refreshes == 1

    def test_refresh_never_rewinds_freshness(self):
        acq = AcquaintanceList(timeout=100)
        acq.update(3, Location(1, 1), now=50)
        acq.refresh(3, now=10)  # stale snoop result arrives out of order
        assert acq.neighbors()[0].last_heard == 50


# ----------------------------------------------------------------------
# Stack observers (the snoop hook) and the live filter
# ----------------------------------------------------------------------
def _pair(seed=0):
    sim = Simulator(seed=seed)
    channel = Channel(sim, PerfectLinks())
    motes = [
        Mote(sim, 1, Location(1, 1), Environment()),
        Mote(sim, 2, Location(2, 1), Environment()),
    ]
    stacks = [NetworkStack(m, channel.attach(m)) for m in motes]
    return sim, channel, motes, stacks


class TestStackObservers:
    def test_observer_sees_overheard_and_filtered_frames(self):
        sim, channel, motes, stacks = _pair()
        seen, got = [], []
        stacks[1].add_observer(lambda f: seen.append((f.src, f.dest)))
        stacks[1].install_filter(lambda f: False)  # drop everything...
        stacks[1].register_handler(0x42, got.append)
        stacks[0].send(2, 0x42, b"x")  # addressed to us, filtered out
        stacks[0].send(99, 0x42, b"y")  # addressed elsewhere
        sim.run_until_idle()
        assert got == []  # the filter did its job
        assert seen == [(1, 2), (1, 99)]  # ...but the observer heard both

    def test_snooping_beacons_keep_busy_neighbors_fresh(self):
        """A neighbor whose beacons are lost survives as long as *any* of its
        traffic is overheard — re-priming from observed traffic."""
        sim, channel, motes, stacks = _pair()
        service = BeaconService(
            motes[1], stacks[1], period=seconds(2), expiry_intervals=2, snoop=True
        )
        service.prime([(1, Location(1, 1))])
        service.start()
        # Mote 1 never beacons, but keeps sending data frames somewhere.
        def chatter():
            stacks[0].send(99, 0x42, b"data")
            sim.schedule(seconds(1), chatter)
        chatter()
        sim.run(duration=seconds(20))  # five timeout windows
        assert 1 in service.acquaintances  # refreshed by overheard data
        assert service.acquaintances.refreshes > 0

    def test_without_snoop_the_same_neighbor_expires(self):
        sim, channel, motes, stacks = _pair()
        service = BeaconService(
            motes[1], stacks[1], period=seconds(2), expiry_intervals=2, snoop=False
        )
        service.prime([(1, Location(1, 1))])
        service.start()
        sim.run(duration=seconds(20))
        assert 1 not in service.acquaintances
        assert service.acquaintances.expirations == 1


class TestLiveNeighborFilter:
    def test_accepts_beacons_live_members_and_pinned(self):
        acq = AcquaintanceList()
        acq.update(5, Location(2, 1), now=0)
        filt = LiveNeighborFilter(acq, always_accept=(0,))
        assert filt(Frame(5, 1, 0x42))  # live acquaintance
        assert filt(Frame(0, 1, 0x42))  # pinned bridge
        assert filt(Frame(9, 1, am.AM_BEACON))  # discovery always passes
        assert not filt(Frame(9, 1, 0x42))  # stranger data: dropped

    def test_membership_tracks_the_live_list(self):
        acq = AcquaintanceList(timeout=100)
        filt = LiveNeighborFilter(acq)
        frame = Frame(5, 1, 0x42)
        assert not filt(frame)
        acq.update(5, Location(2, 1), now=0)
        assert filt(frame)
        acq.evict_stale(now=200)
        assert not filt(frame)  # expired neighbors lose their pass


# ----------------------------------------------------------------------
# Beacon service: expiry knob, wake re-announcement
# ----------------------------------------------------------------------
class TestBeaconAdaptivity:
    def test_expiry_intervals_knob_sets_timeout(self):
        sim, channel, motes, stacks = _pair()
        service = BeaconService(motes[0], stacks[0], period=seconds(2), expiry_intervals=5)
        assert service.acquaintances.timeout == 5 * seconds(2)
        with pytest.raises(ValueError):
            BeaconService(motes[1], stacks[1], expiry_intervals=0)

    def test_expiry_intervals_governs_an_external_list_too(self):
        """The knob is the single source of truth for the staleness horizon
        — it must not silently no-op when a caller supplies its own list."""
        sim, channel, motes, stacks = _pair()
        supplied = AcquaintanceList(capacity=24)
        service = BeaconService(
            motes[0],
            stacks[0],
            acquaintances=supplied,
            period=seconds(2),
            expiry_intervals=6,
        )
        assert service.acquaintances is supplied
        assert supplied.timeout == 6 * seconds(2)
        assert supplied.capacity == 24  # everything else stays the caller's

    def test_power_up_announces_immediately(self):
        sim, channel, motes, stacks = _pair()
        services = [
            BeaconService(m, s, period=seconds(10), announce_on_wake=True)
            for m, s in zip(motes, stacks)
        ]
        for service in services:
            service.start()
        sim.run(duration=seconds(3))
        stacks[0].radio.enabled = False
        sim.run(duration=seconds(2))
        sent = services[0].beacons_sent
        stacks[0].radio.enabled = True  # wake: announce without waiting
        assert services[0].beacons_sent == sent + 1
        sim.run(duration=seconds(1))
        assert 1 in services[1].acquaintances

    def test_announce_respects_a_dead_radio(self):
        sim, channel, motes, stacks = _pair()
        service = BeaconService(motes[0], stacks[0], announce_on_wake=True)
        service.start()
        stacks[0].radio.enabled = False
        sent = service.beacons_sent
        service.announce()  # explicit call while down: silently skipped
        assert service.beacons_sent == sent


# ----------------------------------------------------------------------
# Adaptive deployments: localization, healing routes, recovery
# ----------------------------------------------------------------------
def _corridor(adaptive=True, seed=0, expiry_intervals=2):
    """A(1,1) -- B(2,1) -- C(3,1) with detour D(2,2), physically spaced.

    PerfectLinks with 1.6 m range over 1 m spacing: adjacent (1.0) and
    diagonal (~1.41) links exist, two-unit links do not.
    """
    net = SensorNetwork(
        ExplicitTopology([(1, 1), (2, 1), (3, 1), (2, 2)], radius=1.5),
        seed=seed,
        base_station=False,
        physical=True,
        spacing_m=1.0,
        link_model=PerfectLinks(range_m=1.6),
        beacon_period=seconds(2),
        adaptive=adaptive,
        beacon_expiry_intervals=expiry_intervals,
    )
    return net


class TestAdaptiveLocalization:
    def test_move_updates_believed_location_when_adaptive(self):
        net = _corridor(adaptive=True)
        net.move_node((2, 1), (5.2, 0.8))
        assert net.node((2, 1)).mote.location == Location(5, 1)
        assert net.node((2, 1)).router.own_location == Location(5, 1)

    def test_frozen_mode_keeps_the_snapshot(self):
        net = _corridor(adaptive=False)
        net.move_node((2, 1), (5.2, 0.8))
        assert net.node((2, 1)).mote.location == Location(2, 1)
        assert net.node((2, 1)).router.own_location == Location(2, 1)

    def test_beacons_advertise_the_live_location(self):
        net = _corridor(adaptive=True)
        net.move_node((2, 2), (1.0, 2.0))  # D slides left, still in range of A
        net.run(6.0)  # a couple of beacon intervals
        entry = next(
            e
            for e in net.node((1, 1)).beacons.acquaintances.neighbors()
            if e.mote_id == net.topology.mote_id(Location(2, 2))
        )
        assert entry.location == Location(1, 2)


class TestGeoPartitionRecovery:
    """Satellite: a mobile next-hop leaves range mid-route; the stale entry
    expires and a later send succeeds via the remaining neighbor.  Before
    this PR the drop was silent and permanent."""

    def _sender_receiver(self, net):
        a = net.node((1, 1))
        c = net.node((3, 1))
        got = []
        c.geo.register_kind(am.GEO_APP_MESSAGE, lambda origin, p: got.append(p))
        return a, c, got

    def test_route_heals_after_next_hop_expires(self):
        net = _corridor(adaptive=True)
        a, c, got = self._sender_receiver(net)
        net.run(1.0)
        b_id = net.topology.mote_id(Location(2, 1))
        assert a.router.next_hop(Location(3, 1)) == b_id  # B is the hop today
        net.move_node((2, 1), (2.0, -50.0))  # B wanders far out of range
        # The very next send is forwarded at stale B and dies silently.
        assert a.geo.send(Location(3, 1), am.GEO_APP_MESSAGE, b"first")
        net.run(1.0)
        assert got == []
        assert a.geo.no_route_drops == 0  # nothing even noticed the loss
        # After k missed beacon intervals the stale entry ages out...
        net.run(8.0)
        assert b_id not in a.beacons.acquaintances
        # ...and the detour through D carries the next message end-to-end.
        d_id = net.topology.mote_id(Location(2, 2))
        assert a.router.next_hop(Location(3, 1)) == d_id
        assert a.geo.send(Location(3, 1), am.GEO_APP_MESSAGE, b"second")
        net.run(2.0)
        assert got == [b"second"]

    def _line3(self, adaptive):
        """A(1,1)—B(2,1)—C(3,1), filtered mode, 60 m spacing, 100 m reach."""
        net = SensorNetwork(
            GridTopology(3, 1),
            seed=0,
            base_station=False,
            spacing_m=60.0,
            link_model=PerfectLinks(range_m=100.0),
            beacon_period=seconds(2),
            adaptive=adaptive,
            beacon_expiry_intervals=2,
        )
        return net

    def test_frozen_relay_blackholes_while_adaptive_reports_no_route(self):
        """A relay that drifts to the *wrong side* of the sender keeps
        advertising its deploy-time position in frozen mode, so the sender
        pours frames into a blackhole.  The adaptive sender sees the relay's
        real position, concedes there is no forward progress (an accounted
        ``no_route`` drop, not a silent one) — and recovers the moment the
        relay wanders back between the endpoints."""
        outcomes = {}
        for adaptive in (False, True):
            net = self._line3(adaptive)
            a, c = net.node((1, 1)), net.node((3, 1))
            got = []
            c.geo.register_kind(am.GEO_APP_MESSAGE, lambda origin, p: got.append(p))
            net.run(1.0)
            # B drifts past A: still audible to A (60 m) but 180 m from C.
            net.move_node((2, 1), (0.0, 60.0))
            net.run(10.0)  # beacons re-prime; stale entries age out
            a.geo.send(Location(3, 1), am.GEO_APP_MESSAGE, b"x")
            net.run(3.0)
            outcomes[adaptive] = (list(got), a.geo.no_route_drops)
            if adaptive:
                # The relay returns to the corridor; the next beacon interval
                # re-primes A and traffic flows again.
                net.move_node((2, 1), (120.0, 60.0))
                net.run(6.0)
                a.geo.send(Location(3, 1), am.GEO_APP_MESSAGE, b"resumed")
                net.run(3.0)
                assert got == [b"resumed"]
        assert outcomes[False] == ([], 0)  # frozen: swallowed, nobody noticed
        assert outcomes[True][0] == []  # adaptive: also undeliverable, but...
        assert outcomes[True][1] >= 1  # ...the sender knew and accounted it


class TestRecoveryReannounce:
    """Satellite fix: fail → (carried while dark) → recover used to leave
    peers pointing at the pre-failure position until the next periodic
    beacon; recovery now re-announces immediately in adaptive mode."""

    def _entry_for(self, net, owner, subject):
        mote_id = net.topology.mote_id(Location(*subject))
        for entry in net.node(owner).beacons.acquaintances.neighbors():
            if entry.mote_id == mote_id:
                return entry
        return None

    def test_recovery_reannounces_the_new_position(self):
        # Long beacon period: only the wake announcement can explain a
        # prompt update.
        net = SensorNetwork(
            ExplicitTopology([(1, 1), (2, 1), (3, 1)], radius=1.5),
            seed=0,
            base_station=False,
            physical=True,
            spacing_m=1.0,
            link_model=PerfectLinks(range_m=1.6),
            beacon_period=seconds(30),
            adaptive=True,
        )
        net.run(0.5)
        net.fail_node((2, 1))
        net.move_node((2, 1), (1.0, 2.0))  # carried while dark; A-range only
        net.run(1.0)
        assert self._entry_for(net, (1, 1), (2, 1)).location == Location(2, 1)
        net.recover_node((2, 1))
        net.run(0.5)  # one CSMA backoff, nowhere near the 30 s beat
        assert self._entry_for(net, (1, 1), (2, 1)).location == Location(1, 2)

    def test_regression_stale_entry_drops_in_frozen_mode(self):
        """The reproduced bug: without the re-announcement the peer keeps the
        pre-failure entry, and a send to the node's *actual* position drops
        with no route."""
        for adaptive, expect_delivered in ((True, True), (False, False)):
            net = SensorNetwork(
                ExplicitTopology([(1, 1), (2, 1), (3, 1)], radius=1.5),
                seed=0,
                base_station=False,
                physical=True,
                spacing_m=1.0,
                link_model=PerfectLinks(range_m=1.6),
                beacon_period=seconds(30),
                adaptive=adaptive,
            )
            net.run(0.5)
            got = []
            net.node((2, 1)).geo.register_kind(
                am.GEO_APP_MESSAGE, lambda origin, p: got.append(p)
            )
            net.fail_node((2, 1))
            net.move_node((2, 1), (1.0, 2.0))
            net.run(1.0)
            net.recover_node((2, 1))
            net.run(0.5)
            a = net.node((1, 1))
            a.geo.send(Location(1, 2), am.GEO_APP_MESSAGE, b"hello again")
            net.run(2.0)
            assert bool(got) is expect_delivered, f"adaptive={adaptive}"
            if not expect_delivered:
                assert a.geo.no_route_drops > 0  # stale entry: no progress


# ----------------------------------------------------------------------
# Churn surfaced to the agent layer
# ----------------------------------------------------------------------
def _tags_at(net, where, tag):
    return [
        tup
        for tup in net.tuples_at(where)
        if tup.arity
        and isinstance(tup.fields[0], StringField)
        and tup.fields[0].text == tag
    ]


def _adaptive_grid(width=2, height=2, seed=0, **kwargs):
    kwargs.setdefault("beacon_period", seconds(2))
    kwargs.setdefault("beacon_expiry_intervals", 2)
    return SensorNetwork(
        GridTopology(width, height),
        seed=seed,
        base_station=False,
        adaptive=True,
        **kwargs,
    )


class TestNeighborhoodContextTuples:
    def test_boot_mirrors_primed_neighbors_without_events(self):
        net = _adaptive_grid()
        node = net.node((1, 1))
        assert node.middleware.context_manager.watching
        mirrored = {t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)}
        assert mirrored == {Location(2, 1), Location(1, 2)}  # primed set
        assert _tags_at(net, (1, 1), NEIGHBOR_FOUND_TAG) == []  # no churn yet

    def test_failure_and_recovery_emit_lost_then_found(self):
        net = _adaptive_grid()
        net.run(6.0)  # tabletop: the diagonal neighbor is discovered too
        net.fail_node((2, 2))
        net.run(8.0)  # two expiry windows: beacon loss noticed
        lost = _tags_at(net, (1, 1), NEIGHBOR_LOST_TAG)
        assert [t.fields[1].location for t in lost] == [Location(2, 2)]
        mirrored = {t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)}
        assert Location(2, 2) not in mirrored
        net.recover_node((2, 2))
        net.run(1.0)  # the wake announcement lands well inside one period
        found = _tags_at(net, (1, 1), NEIGHBOR_FOUND_TAG)
        assert [t.fields[1].location for t in found] == [Location(2, 2)]
        mirrored = {t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)}
        assert Location(2, 2) in mirrored

    def test_wakeup_tuple_on_own_power_up(self):
        net = _adaptive_grid()
        assert _tags_at(net, (1, 1), WAKEUP_TAG) == []
        net.fail_node((1, 1))
        net.recover_node((1, 1))
        assert len(_tags_at(net, (1, 1), WAKEUP_TAG)) == 1
        net.fail_node((1, 1))
        net.recover_node((1, 1))
        assert len(_tags_at(net, (1, 1), WAKEUP_TAG)) == 1  # replaced, not stacked

    def test_colocated_neighbors_keep_their_mirror_tuples(self):
        """Locations are not identities: when two mobile neighbors quantize
        to the same grid address and one of them leaves, the survivor's
        ``<'nbr'>`` mirror tuple must remain."""
        net = _corridor(adaptive=True)  # A(1,1), B(2,1), C(3,1), D(2,2)
        a_mirror = lambda: sorted(  # noqa: E731 - tiny local probe
            str(t.fields[1].location) for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)
        )
        net.run(1.0)
        net.move_node((2, 1), (2.0, 2.0))  # B parks on D's cell: both (2,2)
        net.run(6.0)  # B's beacons re-advertise; A sees two neighbors at (2,2)
        assert a_mirror().count("(2,2)") == 2
        net.move_node((2, 1), (50.0, 50.0))  # B leaves for good
        net.run(10.0)  # B expires at A
        assert a_mirror().count("(2,2)") == 1  # D's mirror tuple survived

    def test_dense_field_thrash_raises_no_phantom_finds(self):
        """A tabletop field whose audible degree exceeds table capacity
        (24 > 12 here) thrashes the acquaintance table forever; re-admission
        after a capacity displacement must not masquerade as discovery, or
        reaction-driven agents would storm on phantom ``<'nbf'>`` events."""
        net = SensorNetwork(
            GridTopology(5, 5),  # 24 audible peers per node at 0.3 m spacing
            seed=1,
            base_station=False,
            adaptive=True,
            beacon_period=seconds(2),
        )
        net.run(30.0)
        node = net.node((3, 3))
        context = node.middleware.context_manager
        acquaintances = node.beacons.acquaintances
        assert acquaintances.displacements > 0  # the table really thrashed
        assert context.refind_suppressions > 0  # re-adds were recognized
        # Every *published* find is a genuine first discovery: at most one
        # per distinct audible peer (24 here), no matter how long the table
        # thrashes.  Without suppression this grows with displacements.
        assert context.find_events <= 24

    def test_mirror_resyncs_after_arena_pressure(self):
        """A transiently full arena drops mirror tuples during a sync; the
        dirty-mirror retry restores them once the arena drains instead of
        leaving the mirror permanently desynced from the live list."""
        from repro.agilla.fields import Value
        from repro.agilla.tuples import make_tuple as mk

        net = _adaptive_grid(2, 2)
        net.run(6.0)  # the full tabletop neighborhood is mirrored
        node = net.node((1, 1))
        space = node.middleware.tuplespace_manager.space
        # Jam the arena with ballast so re-inserts must fail.
        ballast = []
        while space.capacity - space.used_bytes >= 4:
            tup = mk(Value(len(ballast)))
            space.out(tup)
            ballast.append(tup)
        # Churn a neighbor: the lost→found cycle rewrites mirror addresses
        # while the arena cannot hold them.
        net.fail_node((2, 2))
        net.run(10.0)
        net.recover_node((2, 2))
        net.run(2.0)
        context = node.middleware.context_manager
        assert context._dirty_mirrors  # the squeeze was noticed, not ignored
        # Drain the ballast; the next event (another churn cycle) re-syncs.
        for tup in ballast:
            space.inp(tup)
        net.fail_node((2, 1))
        net.run(10.0)
        net.recover_node((2, 1))
        net.run(2.0)
        assert not context._dirty_mirrors
        mirrored = {t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)}
        live = {e.location for e in node.beacons.acquaintances.neighbors()}
        assert mirrored == live  # mirror reconverged with the live list

    def test_displacement_marker_expires_so_late_recovery_still_fires(self):
        """A displaced neighbor that then genuinely disappears and returns
        *after* the staleness horizon is a recovery, not table thrash — its
        ``<'nbf'>`` must fire (a steward must re-deploy onto it)."""
        from repro.net.acquaintance import Acquaintance

        net = _adaptive_grid()
        node = net.node((1, 1))
        context = node.middleware.context_manager
        entry = Acquaintance(99, Location(9, 9), net.sim.now)
        context._on_neighbor_event("displaced", entry, None)
        # Prompt re-admission: suppressed as thrash.
        net.run(1.0)
        context._on_neighbor_event("found", entry, None)
        assert context.refind_suppressions == 1
        # Displaced again, then silent far past the staleness horizon...
        context._on_neighbor_event("displaced", entry, None)
        net.run(3 * net.node((1, 1)).beacons.acquaintances.timeout / 1e6)
        # ...so the eventual re-admission is a genuine recovery.  (The run
        # also discovers real tabletop neighbors, so compare deltas around
        # the one call under test.)
        finds_before = context.find_events
        suppressions_before = context.refind_suppressions
        context._on_neighbor_event("found", entry, None)
        assert context.refind_suppressions == suppressions_before  # fired
        assert context.find_events == finds_before + 1
        assert [t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_FOUND_TAG)] == [
            Location(9, 9)
        ]

    def test_boot_mirror_under_arena_pressure_is_marked_dirty(self):
        """A too-small arena at watch time must not silently lose mirror
        tuples: the squeezed addresses are marked dirty and re-synced."""
        from repro.agilla.params import AgillaParams

        net = SensorNetwork(
            GridTopology(2, 2),
            seed=0,
            base_station=False,
            adaptive=True,
            beacon_period=seconds(2),
            params=AgillaParams(ts_arena_bytes=30),  # sensor tuples fill it
        )
        node = net.node((1, 1))
        context = node.middleware.context_manager
        assert context._dirty_mirrors  # the squeeze was recorded at boot
        # Free the arena and trigger any event: the mirror converges.
        node.middleware.tuplespace_manager.space.remove_all(
            make_template(TypeWildcard(FieldType.STRING))
        )
        net.fail_node((1, 1))
        net.recover_node((1, 1))  # wake event retries dirty mirrors
        assert not context._dirty_mirrors
        mirrored = {t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_TAG)}
        live = {e.location for e in node.beacons.acquaintances.neighbors()}
        assert mirrored == live

    def test_event_tuples_stay_bounded_under_churn(self):
        net = _adaptive_grid(3, 3)
        net.run(6.0)
        for _ in range(4):  # flap two different neighbors repeatedly
            for victim in ((3, 3), (3, 2)):
                net.fail_node(victim)
            net.run(10.0)
            for victim in ((3, 3), (3, 2)):
                net.recover_node(victim)
            net.run(4.0)
        # Only the *latest* event of each kind is retained per node.
        assert len(_tags_at(net, (2, 2), NEIGHBOR_LOST_TAG)) <= 1
        assert len(_tags_at(net, (2, 2), NEIGHBOR_FOUND_TAG)) <= 1


class TestStewardRedeploy:
    """The paper's adaptivity claim end-to-end: a reaction-driven agent
    re-deploys a monitor onto a node the moment its beacons reappear."""

    def test_steward_clones_onto_recovered_node(self):
        net = _adaptive_grid(2, 2)
        net.run(6.0)  # warm up: the whole tabletop neighborhood is known
        net.middleware((1, 1)).inject(steward())
        net.run(1.0)  # register the reaction, park in wait
        net.fail_node((2, 2))
        net.run(10.0)  # beacon loss → expiry → <'nbl'> at the steward's node
        assert _tags_at(net, (1, 1), NEIGHBOR_LOST_TAG)
        assert net.agents_at((2, 2)) == []  # nothing lives there while dark
        net.recover_node((2, 2))
        ok = net.run_until(
            lambda: bool(_tags_at(net, (2, 2), MONITOR_TAG)), timeout_s=20.0
        )
        assert ok, "steward never re-deployed onto the recovered node"
        names = [agent.name for agent in net.agents_at((2, 2))]
        assert "stw" in names  # the clone stewards its own neighborhood now


class TestStewardFlapDamping:
    """The hold-down window: a flapping node must not draw a fresh
    ``sclone`` on every recovery, yet one that finally stabilizes still
    gets re-monitored (the deferred find fires at the window's end)."""

    def _quiet_adaptive(self, hold_down_intervals):
        from repro.agilla.params import AgillaParams

        # beacons=False: no spontaneous discovery traffic, so find/defer
        # accounting below is exactly the events this test injects.
        return SensorNetwork(
            GridTopology(2, 2),
            seed=0,
            base_station=False,
            adaptive=True,
            beacons=False,
            beacon_period=seconds(2),
            beacon_expiry_intervals=2,
            params=AgillaParams(find_hold_down_intervals=hold_down_intervals),
        )

    def test_hold_down_defers_then_flushes_or_cancels(self):
        net = self._quiet_adaptive(hold_down_intervals=5)  # 5 × 2 s = 10 s
        node = net.node((1, 1))
        context = node.middleware.context_manager
        acq = node.beacons.acquaintances
        assert context.find_hold_down == seconds(10)
        finds_at_start = context.find_events

        # A brand-new neighbor fires immediately (t = 0).
        acq.update(99, Location(9, 9), net.sim.now)
        assert context.find_events == finds_at_start + 1
        # It goes dark, then flaps back inside the window (t = 7 s).
        net.run(5.0)
        acq.evict_stale(net.sim.now)
        net.run(2.0)
        acq.update(99, Location(9, 9), net.sim.now)
        assert context.flap_deferrals == 1
        assert context.find_events == finds_at_start + 1  # damped, not fired
        # ...and stays up: the deferred find fires when the window expires.
        net.run(5.0)  # past t = 10 s
        assert context.deferred_finds_fired == 1
        assert context.find_events == finds_at_start + 2
        assert [t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_FOUND_TAG)] == [
            Location(9, 9)
        ]

        # Second flap cycle: deferred again (t ≈ 13 s), but this time the
        # node dies before the window runs out — the pending find is moot.
        net.run(3.0)
        acq.evict_stale(net.sim.now)  # lost
        acq.update(99, Location(9, 9), net.sim.now)  # found: deferred
        assert context.flap_deferrals == 2
        net.run(4.5)
        acq.evict_stale(net.sim.now)  # dark again before t = 20 s
        net.run(5.0)  # the flush finds nothing pending
        assert context.deferred_finds_fired == 1
        assert context.find_events == finds_at_start + 2

    def test_flapping_node_draws_one_clone_per_window(self):
        """The fail/recover/fail churn script, end to end: clone #1 lands
        promptly, the quick re-flap is damped, and the eventual deferred
        find re-monitors the (now stable) node exactly once."""
        from repro.agilla.params import AgillaParams

        net = _adaptive_grid(
            2, 2, params=AgillaParams(find_hold_down_intervals=8)  # 16 s window
        )
        victim = (2, 1)  # a primed neighbor of the steward's node
        net.run(6.0)
        net.middleware((1, 1)).inject(steward())
        net.run(1.0)
        context = net.middleware((1, 1)).context_manager

        def stewards_at(where):
            return sum(agent.name == "stw" for agent in net.agents_at(where))

        # Cycle 1: fail long enough to expire, recover → prompt clone.
        net.fail_node(victim)
        net.run(8.0)
        assert Location(*victim) in [
            t.fields[1].location for t in _tags_at(net, (1, 1), NEIGHBOR_LOST_TAG)
        ]
        net.recover_node(victim)
        ok = net.run_until(lambda: stewards_at(victim) >= 1, timeout_s=20.0)
        assert ok, "first recovery was not re-monitored"
        deferrals_before = context.flap_deferrals

        # Cycle 2, inside the hold-down: the recovery find is deferred, so
        # no second clone chases the flap.
        net.fail_node(victim)
        net.run(8.0)
        net.recover_node(victim)
        net.run(3.0)
        assert context.flap_deferrals > deferrals_before
        assert stewards_at(victim) == 1  # damped: no immediate re-clone
        # The node stays up past the window: the deferred find fires and the
        # steward re-monitors it (exactly one more clone).
        ok = net.run_until(lambda: stewards_at(victim) >= 2, timeout_s=25.0)
        assert ok, "stabilized node was never re-monitored"
        assert context.deferred_finds_fired >= 1


# ----------------------------------------------------------------------
# The scenario-level ablation, miniaturized for tier-1
# ----------------------------------------------------------------------
class TestPartitionHealScenario:
    def test_builtin_pair_differs_only_in_adaptivity(self):
        healed = Scenario.from_spec("partition-heal")
        frozen = Scenario.from_spec("partition-heal-frozen")
        assert healed.adaptive and not frozen.adaptive
        healed_spec = healed.to_spec()
        frozen_spec = frozen.to_spec()
        for spec in (healed_spec, frozen_spec):
            spec.pop("name")
            spec.pop("adaptive")
        assert healed_spec == frozen_spec

    def test_adaptive_beats_frozen_delivery_under_mobility(self):
        """The acceptance criterion, shrunk to tier-1 size: same seed, same
        mobility, same churn — only the neighborhood subsystem differs."""
        results = {}
        for name in ("partition-heal", "partition-heal-frozen"):
            scenario = Scenario.from_spec(name)
            scenario.duration_s = 40.0  # the first mobility excursions
            results[name] = scenario.run()
        healed = results["partition-heal"]
        frozen = results["partition-heal-frozen"]
        assert healed["geo_sent"] == frozen["geo_sent"]  # same offered load
        assert healed["geo_delivered"] > frozen["geo_delivered"]
        assert healed["delivery_ratio"] > frozen["delivery_ratio"]
        assert healed["index_rebuilds"] == frozen["index_rebuilds"] == 0
