"""Agent migration tests: strong/weak moves and clones, multi-hop, failures."""

from repro.agilla.agent import AgentState
from repro.agilla.assembler import assemble
from repro.agilla.fields import StringField, Value
from repro.location import Location

from tests.util import corridor, grid, run_agent, single_node


def agent_names(net, at):
    return sorted(a.name for a in net.agents_at(at))


def arrivals(net, at):
    return [e for e in net.middleware(at).migration.events if e[0] == "arrival"]


class TestStrongMove:
    def test_one_hop_smove_carries_state(self):
        net = corridor(3)
        source = """
            pushc 42
            setvar 0
            pushc 7
            pushloc 2 1
            smove
            getvar 0
            wait
        """
        origin = net.inject(assemble(source, name="mover"), at=(1, 1))
        net.run(3.0)
        # The origin copy is gone; the agent resumed at (2,1).
        assert origin.state == AgentState.DEAD
        assert origin.death_reason == "moved"
        assert net.agents_at((1, 1)) == []
        moved = net.agents_at((2, 1))
        assert len(moved) == 1
        arrived = moved[0]
        assert arrived.state == AgentState.WAIT_RXN
        assert arrived.id == origin.id  # id persists across moves (§3.3)
        assert arrived.condition == 1
        # Strong move carried the stack (7) and heap (42 in slot 0).
        assert [f.value for f in arrived.stack if isinstance(f, Value)] == [7, 42]

    def test_round_trip_figure8_agent(self):
        net = grid()
        source = """
            pushloc 5 1
            smove
            pushloc 0 0
            smove
            halt
        """
        agent = net.inject(assemble(source, name="smove-test"), at=(0, 0))
        assert net.run_until(
            lambda: any(e[1] == agent.id for e in arrivals(net, (0, 0))), 30.0
        )
        assert len(arrivals(net, (5, 1))) == 1

    def test_multi_hop_goes_hop_by_hop(self):
        net = corridor(4)
        agent = net.inject(
            assemble("pushloc 4 1\nsmove\nwait", name="hop"), at=(1, 1)
        )
        net.run(5.0)
        # Agent names travel as 3-character species tags (sim metadata).
        assert agent_names(net, (4, 1)) == ["hop"]
        # Intermediate motes relayed (forwarded) the agent.
        relay_events = [e for e in net.middleware((2, 1)).migration.events if e[0] == "relay"]
        assert len(relay_events) == 1
        arrived = net.agents_at((4, 1))[0]
        assert arrived.hops == 1  # installed once, at the destination

    def test_smove_to_self_is_noop_success(self):
        net = single_node()
        agent = run_agent(net, "pushloc 1 1\nsmove\nwait")
        assert agent.state == AgentState.WAIT_RXN
        assert agent.condition == 1
        assert len(net.agents_at((1, 1))) == 1

    def test_unroutable_dest_fails_with_condition_zero(self):
        net = corridor(2)
        agent = run_agent(net, "pushloc 9 9\nsmove\nwait", at=(2, 1))
        assert agent.state == AgentState.WAIT_RXN
        assert agent.condition == 0
        assert len(net.agents_at((2, 1))) == 1  # resumed locally


class TestWeakMove:
    def test_wmove_resets_execution(self):
        net = corridor(2)
        source = """
            pushc 3
            setvar 0
            getvar 0
            pushc 0
            ceq
            rjumpc DONE
            pushloc 2 1
            wmove
            DONE wait
        """
        # First run: heap slot 0 = 3, moves weakly; at (2,1) it restarts from
        # pc 0, sets slot 0 = 3 again, compares, moves "to (2,1)" = self,
        # restarts... use a simpler observable instead: the stack is empty
        # and pc restarted, so heap was reset before re-execution.
        origin = net.inject(assemble(source, name="weak"), at=(1, 1))
        net.run(3.0)
        assert origin.state == AgentState.DEAD
        arrived = net.agents_at((2, 1))
        assert len(arrived) == 1

    def test_wmove_drops_stack_and_heap(self):
        net = corridor(2)
        source = """
            pushc 9
            pushc 8
            pushloc 2 1
            wmove
            wait
        """
        net.inject(assemble(source, name="weak"), at=(1, 1))
        net.run(3.0)
        arrived = net.agents_at((2, 1))[0]
        # Weak transfer: restarted at pc 0, so it re-pushed 9 and 8, then
        # wmove to (2,1) == self is a no-op reset... the agent loops; what is
        # observable is that the *transferred* messages carried no stack.
        state_events = net.middleware((1, 1)).migration.messages_sent
        assert state_events == 3  # state + 1 code block + commit, no stack msg


class TestClones:
    def test_sclone_leaves_parent_and_creates_child(self):
        net = corridor(2)
        source = """
            pushc 5
            pushloc 2 1
            sclone
            wait
        """
        parent = net.inject(assemble(source, name="cloner"), at=(1, 1))
        net.run(3.0)
        assert parent.state == AgentState.WAIT_RXN
        assert parent.condition == 1
        assert parent.clones_spawned == 1
        children = net.agents_at((2, 1))
        assert len(children) == 1
        child = children[0]
        assert child.id != parent.id  # clones get a fresh id (§3.3)
        assert [f.value for f in child.stack if isinstance(f, Value)] == [5]

    def test_wclone_child_restarts_fresh(self):
        net = corridor(2)
        source = """
            pushn sig
            pushc 1
            out
            loc
            pushloc 2 1
            ceq
            rjumpc STOP
            pushloc 2 1
            wclone
            STOP wait
        """
        parent = net.inject(assemble(source, name="wcloner"), at=(1, 1))
        net.run(5.0)
        assert parent.state == AgentState.WAIT_RXN
        child = net.agents_at((2, 1))[0]
        # The child re-ran from scratch: it inserted its own 'sig' tuple.
        sig = [
            t
            for t in net.tuples_at((2, 1))
            if isinstance(t.fields[0], StringField) and t.fields[0].text == "sig"
        ]
        assert len(sig) == 1
        assert child.state == AgentState.WAIT_RXN

    def test_clone_to_self_forks_locally(self):
        net = single_node()
        parent = run_agent(net, "pushloc 1 1\nsclone\nwait", name="forker")
        net.run(1.0)
        agents = net.agents_at((1, 1))
        assert len(agents) == 2
        assert parent.condition == 1

    def test_clone_carries_reactions(self):
        net = corridor(2)
        source = """
            pushn fir
            pusht LOCATION
            pushc 2
            pushc HANDLER
            regrxn
            pushloc 2 1
            sclone
            wait
            HANDLER pushc LED_RED_ON
            putled
            wait
        """
        net.inject(assemble(source, name="rxnclone"), at=(1, 1))
        net.run(3.0)
        # Both parent's and child's registries hold the reaction.
        assert len(net.middleware((1, 1)).tuplespace_manager.registry) == 1
        assert len(net.middleware((2, 1)).tuplespace_manager.registry) == 1
        # Fire at the child: its LED lights.
        run_agent(net, "pushn fir\nloc\npushc 2\nout\nhalt", at=(2, 1), name="det")
        net.run(2.0)
        assert net.middleware((2, 1)).mote.leds.lit() == ["red"]


class TestMigrationFailure:
    def test_total_loss_resumes_locally_with_condition_zero(self):
        net = corridor(2)
        # Kill the (1,1) -> (2,1) link completely.
        net.channel.prr_overrides[(1, 2)] = 0.0
        agent = run_agent(net, "pushloc 2 1\nsmove\nwait", at=(1, 1), timeout_s=30.0)
        assert agent.state == AgentState.WAIT_RXN
        assert agent.condition == 0
        assert len(net.agents_at((1, 1))) == 1
        assert len(net.agents_at((2, 1))) == 0
        assert net.middleware((1, 1)).migration.failures == 1

    def test_ack_loss_can_duplicate_clone_custody(self):
        # If all ACKs are lost the sender fails while the receiver may have
        # aborted; the agent must still exist at the origin (§3.2: duplicates
        # are preferred over loss).
        net = corridor(2)
        net.channel.prr_overrides[(2, 1)] = 0.0  # receiver's acks never return
        agent = run_agent(net, "pushloc 2 1\nsmove\nwait", at=(1, 1), timeout_s=30.0)
        assert agent.condition == 0
        assert len(net.agents_at((1, 1))) == 1

    def test_reactions_restored_after_failed_move(self):
        net = corridor(2)
        net.channel.prr_overrides[(1, 2)] = 0.0
        source = """
            pushn fir
            pusht LOCATION
            pushc 2
            pushc HANDLER
            regrxn
            pushloc 2 1
            smove
            wait
            HANDLER wait
        """
        agent = run_agent(net, source, at=(1, 1), timeout_s=30.0)
        assert agent.condition == 0
        assert len(net.middleware((1, 1)).tuplespace_manager.registry) == 1

    def test_receiver_full_rejects_migration(self):
        net = corridor(2)
        # Fill (2,1) with four parked agents.
        for index in range(4):
            run_agent(net, "wait", at=(2, 1), name=f"fill{index}")
        agent = run_agent(net, "pushloc 2 1\nsmove\nwait", at=(1, 1), timeout_s=30.0)
        assert agent.condition == 0
        assert len(net.agents_at((2, 1))) == 4
        assert net.middleware((2, 1)).migration.install_drops >= 1

    def test_migration_statistics(self):
        net = corridor(2)
        run_agent(net, "pushloc 2 1\nsmove\nwait", at=(1, 1))
        net.run(2.0)
        sender = net.middleware((1, 1)).migration
        receiver = net.middleware((2, 1)).migration
        assert sender.transfers_started == 1
        assert sender.hop_successes == 1
        assert receiver.arrivals == 1
