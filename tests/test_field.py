"""The RadioField array mirror: slot lifecycle, sync hooks, dense PRR rows."""

import numpy as np
import pytest

from repro.radio import Channel, Frame, PerfectLinks, RadioField, UniformLossLinks
from repro.radio.field import ELIGIBLE_IDLE, ELIGIBLE_NEVER, NO_CS, NO_TX_END
from repro.sim import Simulator
from tests.test_radio import make_mote


class TestSlotLifecycle:
    def test_allocate_seeds_state_and_maps_both_ways(self):
        field = RadioField(capacity=2)
        slot = field.allocate(7, (1.5, 2.5))
        assert field.slot_of[7] == slot
        assert field.mote_ids[slot] == 7
        assert field.positions[slot].tolist() == [1.5, 2.5]
        assert field.enabled[slot]
        assert field.tx_end[slot] == NO_TX_END
        assert len(field) == 1

    def test_duplicate_allocate_rejected(self):
        field = RadioField()
        field.allocate(1, (0.0, 0.0))
        with pytest.raises(ValueError):
            field.allocate(1, (1.0, 1.0))

    def test_release_resets_state_and_recycles_lifo(self):
        field = RadioField(capacity=4)
        a = field.allocate(1, (0.0, 0.0))
        field.begin_tx(a, 100, 200)
        field.release(1)
        assert 1 not in field.slot_of
        assert not field.enabled[a]
        assert field.tx_end[a] == NO_TX_END
        assert field.mote_ids[a] == -1
        # LIFO recycling keeps the arrays dense under churn.
        assert field.allocate(2, (3.0, 3.0)) == a

    def test_growth_preserves_slots_and_resizes_scratch(self):
        field = RadioField(capacity=2)
        slots = [field.allocate(i, (float(i), 0.0)) for i in range(1, 8)]
        assert field.capacity >= 7
        assert field.scratch_bool.size == field.capacity
        assert field.scratch_prr.size == field.capacity
        assert np.all(np.isnan(field.scratch_prr))
        for mote_id, slot in zip(range(1, 8), slots):
            assert field.slot_of[mote_id] == slot
            assert field.positions[slot, 0] == float(mote_id)

    def test_eligible_key_tracks_power_and_tx_state(self):
        # The fused comparand: ``eligible_key[slot] >= frame_end`` answers
        # "powered and not mid-transmission" in one gather.
        field = RadioField(capacity=2)
        slot = field.allocate(1, (0.0, 0.0))
        assert field.eligible_key[slot] == ELIGIBLE_IDLE
        field.begin_tx(slot, 100, 200)
        assert field.eligible_key[slot] == 100  # own tx start: < any overlap end
        field.set_enabled(slot, False)
        assert field.eligible_key[slot] == ELIGIBLE_NEVER
        field.set_enabled(slot, True)
        assert field.eligible_key[slot] == 100  # re-enabled mid-own-tx
        field.end_tx(slot)
        assert field.eligible_key[slot] == ELIGIBLE_IDLE
        field.set_enabled(slot, False)
        field.begin_tx(slot, 300, 400)
        assert field.eligible_key[slot] == ELIGIBLE_NEVER  # disabled wins
        field.end_tx(slot)
        assert field.eligible_key[slot] == ELIGIBLE_NEVER

    def test_cs_time_arms_and_clears(self):
        field = RadioField(capacity=2)
        slot = field.allocate(1, (0.0, 0.0))
        assert field.cs_time[slot] == NO_CS
        field.arm_cs(slot, 12345)
        assert field.cs_time[slot] == 12345
        field.clear_cs(slot)
        assert field.cs_time[slot] == NO_CS

    def test_release_resets_sense_and_reception_state(self):
        field = RadioField(capacity=2)
        slot = field.allocate(1, (0.0, 0.0), attach_seq=9)
        assert field.attach_seq[slot] == 9
        field.arm_cs(slot, 777)
        field.frames_received[slot] = 3
        field.release(1)
        assert field.eligible_key[slot] == ELIGIBLE_NEVER
        assert field.cs_time[slot] == NO_CS
        assert field.attach_seq[slot] == -1
        assert field.frames_received[slot] == 0
        # A recycled slot starts clean for the next mote.
        fresh = field.allocate(2, (1.0, 1.0), attach_seq=10)
        assert fresh == slot
        assert field.eligible_key[fresh] == ELIGIBLE_IDLE
        assert field.attach_seq[fresh] == 10

    def test_growth_extends_sense_arrays_with_neutral_fills(self):
        field = RadioField(capacity=2)
        for i in range(1, 6):
            field.allocate(i, (float(i), 0.0), attach_seq=i)
        assert field.eligible_key.size == field.capacity
        assert field.cs_time.size == field.capacity
        free = [s for s in range(field.capacity) if s not in field.slot_of.values()]
        assert all(field.eligible_key[s] == ELIGIBLE_NEVER for s in free)
        assert all(field.cs_time[s] == NO_CS for s in free)
        assert all(field.attach_seq[s] == -1 for s in free)
        assert all(field.frames_received[s] == 0 for s in free)

    def test_slots_of_gathers_in_order(self):
        field = RadioField()
        for i in (3, 1, 2):
            field.allocate(i, (0.0, 0.0))
        slots = field.slots_of([1, 2, 3])
        assert slots.tolist() == [field.slot_of[1], field.slot_of[2], field.slot_of[3]]


class TestChannelMirrors:
    """The field is written through exactly the channel's existing hooks."""

    def _deploy(self, count=3, link_model=None):
        sim = Simulator(seed=0)
        channel = Channel(sim, link_model or PerfectLinks(), grid_spacing_m=1.0)
        radios = [
            channel.attach(make_mote(sim, i + 1, i, 0)) for i in range(count)
        ]
        return sim, channel, radios

    def test_attach_and_move_mirror_positions(self):
        sim, channel, radios = self._deploy()
        field = channel.field
        slot = radios[1]._slot
        assert field.positions[slot].tolist() == list(radios[1].position)
        channel.move(2, (9.0, 4.0))
        assert field.positions[slot].tolist() == [9.0, 4.0]
        assert radios[1].position == (9.0, 4.0)

    def test_enabled_setter_mirrors_power_state(self):
        sim, channel, radios = self._deploy()
        field = channel.field
        slot = radios[0]._slot
        radios[0].enabled = False
        assert not field.enabled[slot]
        radios[0].enabled = True
        assert field.enabled[slot]

    def test_tx_interval_mirrors_current_transmission(self):
        sim, channel, radios = self._deploy()
        field = channel.field
        slot = radios[0]._slot
        seen = []
        original_end = channel.end_transmission

        def spy(tx):
            seen.append((int(field.tx_start[slot]), int(field.tx_end[slot])))
            original_end(tx)

        channel.end_transmission = spy
        radios[0].send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        # At the sender's own end-of-frame the mirror is already idle —
        # exactly like Radio._current_tx, which clears first.
        assert seen == [(0, NO_TX_END)] or seen[0][1] == NO_TX_END
        assert field.tx_end[slot] == NO_TX_END

    def test_detach_frees_the_slot(self):
        sim, channel, radios = self._deploy()
        field = channel.field
        slot = radios[2]._slot
        channel.detach(3)
        assert radios[2]._slot is None
        assert 3 not in field.slot_of
        assert not field.enabled[slot]

    def test_cs_time_mirrors_armed_carrier_sense(self):
        sim, channel, radios = self._deploy()
        channel.track_cs = True  # the shard-worker bookkeeping, off by default
        field = channel.field
        slot = radios[0]._slot
        assert field.cs_time[slot] == NO_CS
        radios[0].send(Frame(1, 2, 0x10, b"x"))
        # The initial-backoff carrier-sense event is armed in the mirror —
        # this is what the shard worker's horizon() min-reduces over.
        assert field.cs_time[slot] != NO_CS
        assert field.cs_time[slot] >= sim.now
        sim.run_until_idle()
        assert field.cs_time[slot] == NO_CS

    def test_attach_seq_mirrors_attach_order(self):
        sim, channel, radios = self._deploy()
        field = channel.field
        seqs = [int(field.attach_seq[r._slot]) for r in radios]
        assert seqs == sorted(seqs)
        assert seqs == [r._attach_seq for r in radios]

    def test_frames_received_folds_back_on_detach(self):
        sim, channel, radios = self._deploy()
        channel.vector_fanout_min = 1  # tally receptions in the field array
        radios[0].send(Frame(1, 2, 0x10, b"x"))
        sim.run_until_idle()
        assert radios[1].frames_received == 1
        assert channel.field.frames_received[radios[1]._slot] == 1
        channel.detach(2)
        # The per-slot tally folded into the radio before the slot reset.
        assert radios[1].frames_received == 1

    def test_reattached_id_gets_fresh_state(self):
        sim, channel, radios = self._deploy()
        channel.detach(2)
        radio = channel.attach(make_mote(sim, 2, 7, 7))
        slot = radio._slot
        assert channel.field.positions[slot].tolist() == [7.0, 7.0]
        assert channel.field.enabled[slot]


class TestLinkCacheRowArrays:
    def _deploy(self):
        sim = Simulator(seed=0)
        channel = Channel(sim, UniformLossLinks(prr=0.7), grid_spacing_m=1.0)
        radios = [channel.attach(make_mote(sim, i + 1, i, 0)) for i in range(3)]
        for radio in radios:
            radio.set_receive_callback(lambda f: None)
        return sim, channel, radios

    def test_row_array_mirrors_dict_row(self):
        sim, channel, radios = self._deploy()
        cache = channel.link_cache
        arr = cache.row_array(1)
        assert np.all(np.isnan(arr))  # nothing resolved yet
        cache.fill(1, radios[0].position, 2, radios[1].position)
        arr = cache.row_array(1)
        assert arr[channel.field.slot_of[2]] == 0.7
        assert np.isnan(arr[channel.field.slot_of[3]])

    def test_fill_patches_a_cached_array_in_place(self):
        sim, channel, radios = self._deploy()
        cache = channel.link_cache
        arr = cache.row_array(1)
        cache.fill(1, radios[0].position, 3, radios[2].position)
        assert cache.row_array(1) is arr  # same array, patched
        assert arr[channel.field.slot_of[3]] == 0.7

    def test_invalidation_drops_arrays_on_both_ends(self):
        sim, channel, radios = self._deploy()
        cache = channel.link_cache
        cache.fill(1, radios[0].position, 2, radios[1].position)
        cache.fill(2, radios[1].position, 1, radios[0].position)
        cache.row_array(1), cache.row_array(2)
        channel.move(2, (9.0, 0.0))  # invalidates every pair involving 2
        assert np.all(np.isnan(cache.row_array(1)))
        assert np.all(np.isnan(cache.row_array(2)))

    def test_row_array_rebuilds_after_field_growth(self):
        sim, channel, radios = self._deploy()
        cache = channel.link_cache
        cache.fill(1, radios[0].position, 2, radios[1].position)
        small = cache.row_array(1)
        mote_id = 100
        while channel.field.capacity == small.size:  # force a growth cycle
            mote_id += 1
            channel.attach(make_mote(sim, mote_id, 5, 5))
        grown = cache.row_array(1)
        assert grown.size == channel.field.capacity > small.size
        assert grown[channel.field.slot_of[2]] == 0.7
