"""Unit tests for the assembler and disassembler, including paper listings."""

import pytest

from repro.agilla.assembler import assemble, code_length, disassemble
from repro.agilla.isa import BY_NAME, INSTRUCTIONS, PAPER_OPCODES, Operand
from repro.errors import AssemblerError

SMOVE_AGENT = """
    // The smove agent (Figure 8, top)
    1: pushloc 5 1
    2: smove            // strong move to mote at (5,1)
    3: pushloc 0 0
    4: smove            // strong move to mote at (0,0)
    5: halt
"""

ROUT_AGENT = """
    // The rout agent (Figure 8, bottom)
    pushc 1
    pushc 1             // tuple <value:1> on stack
    pushloc 5 1
    rout                // do rout on mote (5,1)
    halt
"""

FIRETRACKER_PREFIX = """
    BEGIN pushn fir
    pusht LOCATION
    pushc 2
    pushc FIRE          // register fire alert reaction
    regrxn
    wait                // wait for reaction to fire
    FIRE pop
    sclone              // strong clone to the detecting node
    halt
"""


class TestAssembleBasics:
    def test_smove_agent_assembles(self):
        program = assemble(SMOVE_AGENT, name="smove-test")
        # pushloc(5) + smove(1) + pushloc(5) + smove(1) + halt(1) = 13 bytes
        assert program.size == 13
        assert program.name == "smove-test"

    def test_rout_agent_assembles(self):
        program = assemble(ROUT_AGENT)
        # pushc(2)*2 + pushloc(5) + rout(1) + halt(1) = 11 bytes
        assert program.size == 11

    def test_firetracker_labels(self):
        program = assemble(FIRETRACKER_PREFIX)
        assert program.labels["BEGIN"] == 0
        # BEGIN..wait = pushn(3)+pusht(2)+pushc(2)+pushc(2)+regrxn(1)+wait(1)
        assert program.labels["FIRE"] == 11
        # `pushc FIRE` must encode the label's address.
        assert program.code[8] == 11

    def test_paper_line_numbers_tolerated(self):
        with_numbers = "1: pushc 5\n2: halt"
        without = "pushc 5\nhalt"
        assert assemble(with_numbers).code == assemble(without).code

    def test_comments_stripped(self):
        assert assemble("halt // the end").code == assemble("halt").code

    def test_colon_label_form(self):
        program = assemble("START: pushc 1\nrjump START")
        assert program.labels["START"] == 0

    def test_named_constants(self):
        program = assemble("pushc TEMPERATURE\nsense\nhalt")
        assert program.code[1] == 1  # TEMPERATURE == 1

    def test_rjump_offset_is_relative(self):
        program = assemble("BEGIN nop\nnop\nrjump BEGIN")
        # rjump sits at address 2; BEGIN is 0 -> offset -2 (0xFE).
        assert program.code[-1] == 0xFE

    def test_pushloc_negative_coordinates(self):
        program = assemble("pushloc -1 -2\nhalt")
        assert program.size == 6

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("// nothing here")

    def test_code_length_helper(self):
        assert code_length("halt") == 1


class TestAssembleErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble("fly 1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="operand"):
            assemble("pushloc 5")
        with pytest.raises(AssemblerError, match="operand"):
            assemble("halt 3")

    def test_pushc_range(self):
        with pytest.raises(AssemblerError, match="pushc"):
            assemble("pushc 300")

    def test_pushcl_range(self):
        with pytest.raises(AssemblerError):
            assemble("pushcl 70000")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="not a number"):
            assemble("pushc NOPE")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("A nop\nA nop")

    def test_relative_jump_out_of_range(self):
        far = "BEGIN nop\n" + "pushloc 1 1\n" * 40 + "rjump BEGIN"
        with pytest.raises(AssemblerError, match="±127"):
            assemble(far)

    def test_heap_slot_range(self):
        with pytest.raises(AssemblerError, match="heap slot"):
            assemble("getvar 12")

    def test_bad_string(self):
        with pytest.raises(AssemblerError):
            assemble("pushn fire")


class TestDisassembler:
    def test_round_trip_all_instructions(self):
        lines = []
        for idef in INSTRUCTIONS:
            if idef.operand == Operand.NONE:
                lines.append(idef.name)
            elif idef.operand == Operand.U8:
                lines.append(f"{idef.name} 7")
            elif idef.operand == Operand.I8_REL:
                lines.append(f"{idef.name} 0")
            elif idef.operand == Operand.I16:
                lines.append(f"{idef.name} -1234")
            elif idef.operand == Operand.STRING:
                lines.append(f"{idef.name} abc")
            elif idef.operand in (Operand.TYPE, Operand.RTYPE):
                lines.append(f"{idef.name} 1")
            elif idef.operand == Operand.LOCATION:
                lines.append(f"{idef.name} 3 -4")
            elif idef.operand == Operand.VAR:
                lines.append(f"{idef.name} 5")
        source = "\n".join(lines)
        program = assemble(source)
        recovered = disassemble(program.code)
        reassembled = assemble("\n".join(recovered))
        assert reassembled.code == program.code

    def test_invalid_opcode_rejected(self):
        with pytest.raises(AssemblerError, match="invalid opcode"):
            disassemble(b"\xfe")

    def test_truncated_instruction_rejected(self):
        pushcl = BY_NAME["pushcl"]
        with pytest.raises(AssemblerError, match="truncated"):
            disassemble(bytes([pushcl.opcode, 0x01]))


class TestIsaTable:
    def test_paper_opcodes_preserved(self):
        # Figure 7 of the paper fixes these opcode assignments.
        for name, opcode in PAPER_OPCODES.items():
            assert BY_NAME[name].opcode == opcode, name

    def test_opcodes_unique(self):
        opcodes = [idef.opcode for idef in INSTRUCTIONS]
        assert len(opcodes) == len(set(opcodes))

    def test_most_instructions_are_one_byte(self):
        # §3.4: "With a few exceptions, an instruction is one byte".
        one_byte = sum(1 for idef in INSTRUCTIONS if idef.length == 1)
        assert one_byte > len(INSTRUCTIONS) * 0.6

    def test_every_instruction_has_docs_and_cycles(self):
        for idef in INSTRUCTIONS:
            assert idef.doc
            assert idef.base_cycles > 0
