"""Unit tests for tagged fields, packed strings, and matching rules."""

import pytest

from repro.agilla.fields import (
    AgentIdField,
    FieldType,
    LocationField,
    Reading,
    ReadingWildcard,
    StringField,
    TypeWildcard,
    Value,
    decode_field,
    field_matches,
    is_numeric,
    is_wildcard,
    pack_string,
    unpack_string,
)
from repro.errors import TupleSpaceError
from repro.location import Location
from repro.mote.sensors import TEMPERATURE


class TestPackedStrings:
    def test_round_trip(self):
        for text in ("fir", "a", "ab", "agt", "x_z", "a-b", "!?."):
            assert unpack_string(pack_string(text)) == text

    def test_packed_into_two_bytes(self):
        assert len(pack_string("fir")) == 2

    def test_too_long_rejected(self):
        with pytest.raises(TupleSpaceError):
            pack_string("fire")

    def test_bad_characters_rejected(self):
        with pytest.raises(TupleSpaceError):
            pack_string("AB")
        with pytest.raises(TupleSpaceError):
            pack_string("a1")

    def test_empty_string(self):
        assert unpack_string(pack_string("")) == ""


class TestFieldEncoding:
    CASES = [
        Value(0),
        Value(-32768),
        Value(32767),
        AgentIdField(0xBEEF),
        StringField("fir"),
        LocationField(Location(5, 1)),
        LocationField(Location(-3, 7)),
        Reading(TEMPERATURE, 321),
        TypeWildcard(FieldType.LOCATION),
        ReadingWildcard(TEMPERATURE),
    ]

    @pytest.mark.parametrize("field", CASES, ids=lambda f: str(f))
    def test_round_trip(self, field):
        encoded = field.encode()
        decoded, consumed = decode_field(encoded)
        assert decoded == field
        assert consumed == len(encoded) == field.wire_size

    def test_wire_sizes(self):
        assert Value(1).wire_size == 3
        assert StringField("fir").wire_size == 3
        assert LocationField(Location(1, 1)).wire_size == 5
        assert Reading(1, 2).wire_size == 4
        assert TypeWildcard(FieldType.VALUE).wire_size == 2

    def test_value_range_checked(self):
        with pytest.raises(TupleSpaceError):
            Value(40000)

    def test_decode_rejects_garbage(self):
        with pytest.raises(TupleSpaceError):
            decode_field(b"\xff\x00\x00")
        with pytest.raises(TupleSpaceError):
            decode_field(b"")


class TestMatching:
    def test_concrete_fields_match_by_equality(self):
        assert field_matches(Value(5), Value(5))
        assert not field_matches(Value(5), Value(6))
        assert not field_matches(Value(5), StringField("abc"))

    def test_type_wildcard_matches_by_type(self):
        wildcard = TypeWildcard(FieldType.LOCATION)
        assert field_matches(wildcard, LocationField(Location(9, 9)))
        assert not field_matches(wildcard, Value(1))

    def test_reading_wildcard_matches_sensor_type(self):
        wildcard = ReadingWildcard(TEMPERATURE)
        assert field_matches(wildcard, Reading(TEMPERATURE, 77))
        assert not field_matches(wildcard, Reading(TEMPERATURE + 1, 77))
        assert not field_matches(wildcard, Value(77))

    def test_wildcard_predicates(self):
        assert is_wildcard(TypeWildcard(FieldType.VALUE))
        assert is_wildcard(ReadingWildcard(1))
        assert not is_wildcard(Value(1))

    def test_numeric_predicates(self):
        assert is_numeric(Value(1))
        assert is_numeric(Reading(1, 5))
        assert not is_numeric(StringField("abc"))
        assert Reading(1, 5).numeric() == 5
