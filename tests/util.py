"""Shared test helpers: small networks and agent-running shortcuts."""

from __future__ import annotations

from repro.agilla.agent import Agent, AgentState
from repro.agilla.assembler import assemble
from repro.network import GridNetwork
from repro.radio.linkmodels import PerfectLinks


def single_node(seed: int = 0, **kwargs) -> GridNetwork:
    """A lone mote at (1,1) with perfect radio silence around it."""
    kwargs.setdefault("link_model", PerfectLinks())
    kwargs.setdefault("beacons", False)
    return GridNetwork(width=1, height=1, seed=seed, base_station=False, **kwargs)


def corridor(length: int = 3, seed: int = 0, lossless: bool = True, **kwargs) -> GridNetwork:
    """A 1-row corridor of `length` motes plus the base station at (0,0)."""
    if lossless:
        kwargs.setdefault("link_model", PerfectLinks())
    kwargs.setdefault("beacons", False)
    return GridNetwork(width=length, height=1, seed=seed, **kwargs)


def grid(seed: int = 0, lossless: bool = True, **kwargs) -> GridNetwork:
    """The paper's 5x5 testbed (lossless by default for deterministic tests)."""
    if lossless:
        kwargs.setdefault("link_model", PerfectLinks())
    return GridNetwork(width=5, height=5, seed=seed, **kwargs)


def run_agent(
    net: GridNetwork,
    source: str,
    at=(1, 1),
    name: str = "test",
    timeout_s: float = 10.0,
) -> Agent:
    """Inject an agent and run until it parks (dead/waiting/etc.)."""
    agent = net.inject(assemble(source, name=name), at=at)
    settled = (
        AgentState.DEAD,
        AgentState.WAIT_RXN,
        AgentState.BLOCKED_TS,
        AgentState.SLEEPING,
    )
    net.run_until(lambda: agent.state in settled, timeout_s)
    return agent


def run_to_death(net: GridNetwork, agent: Agent, timeout_s: float = 10.0) -> bool:
    return net.run_until(lambda: agent.state == AgentState.DEAD, timeout_s)
