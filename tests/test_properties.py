"""Property-based tests (hypothesis) for core data structures & invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import SensorNetwork
from repro.radio.linkmodels import PerfectLinks
from repro.sim.units import seconds
from repro.topology import GridTopology

from repro.agilla.assembler import assemble, disassemble
from repro.agilla.fields import (
    AgentIdField,
    FieldType,
    LocationField,
    Reading,
    ReadingWildcard,
    StringField,
    TypeWildcard,
    Value,
    decode_field,
    pack_string,
    unpack_string,
)
from repro.agilla.tuples import AgillaTuple, MAX_FIELD_BYTES
from repro.agilla.tuplespace import TupleSpace
from repro.errors import TupleSpaceFullError
from repro.location import Location
from repro.sim.kernel import Simulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
packable_text = st.text(alphabet=string.ascii_lowercase + "_-.!?", min_size=0, max_size=3)

locations = st.builds(
    Location,
    st.integers(min_value=-32768, max_value=32767),
    st.integers(min_value=-32768, max_value=32767),
)

concrete_fields = st.one_of(
    st.builds(Value, st.integers(min_value=-32768, max_value=32767)),
    st.builds(AgentIdField, st.integers(min_value=0, max_value=0xFFFF)),
    st.builds(StringField, packable_text.filter(lambda t: len(t) > 0)),
    st.builds(LocationField, locations),
    st.builds(
        Reading,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=-32768, max_value=32767),
    ),
)

any_fields = st.one_of(
    concrete_fields,
    st.builds(TypeWildcard, st.sampled_from(list(FieldType))),
    st.builds(ReadingWildcard, st.integers(min_value=0, max_value=255)),
)


def small_tuples(fields=concrete_fields):
    return st.lists(fields, min_size=0, max_size=5).map(
        lambda fs: AgillaTuple(tuple(fs))
        if sum(f.wire_size for f in fs) <= MAX_FIELD_BYTES
        else AgillaTuple(tuple(fs[:2]))
    )


# ----------------------------------------------------------------------
# Codec round trips
# ----------------------------------------------------------------------
class TestCodecProperties:
    @given(packable_text)
    def test_string_packing_round_trips(self, text):
        assert unpack_string(pack_string(text)) == text

    @given(any_fields)
    def test_field_codec_round_trips(self, field):
        decoded, consumed = decode_field(field.encode())
        assert decoded == field
        assert consumed == field.wire_size

    @given(small_tuples(any_fields))
    def test_tuple_codec_round_trips(self, tup):
        decoded, consumed = AgillaTuple.decode(tup.encode())
        assert decoded == tup
        assert consumed == tup.wire_size

    @given(small_tuples(any_fields), st.binary(min_size=0, max_size=8))
    def test_tuple_decode_ignores_trailing_bytes(self, tup, suffix):
        decoded, consumed = AgillaTuple.decode(tup.encode() + suffix)
        assert decoded == tup
        assert consumed == tup.wire_size


# ----------------------------------------------------------------------
# Matching properties
# ----------------------------------------------------------------------
class TestMatchingProperties:
    @given(small_tuples())
    def test_concrete_tuple_matches_itself(self, tup):
        assert tup.matches(tup)

    @given(small_tuples())
    def test_all_wildcard_template_matches(self, tup):
        template = AgillaTuple(tuple(TypeWildcard(f.ftype) for f in tup.fields))
        assert template.matches(tup)

    @given(small_tuples(), small_tuples())
    def test_arity_mismatch_never_matches(self, a, b):
        if a.arity != b.arity:
            assert not a.matches(b)


# ----------------------------------------------------------------------
# Tuple space invariants
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(st.sampled_from(["out", "inp", "rdp", "count"]), small_tuples()),
    max_size=40,
)


class TestTupleSpaceProperties:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_arena_accounting_never_breaks(self, operations):
        space = TupleSpace(capacity=120)
        shadow: list[AgillaTuple] = []
        for op, tup in operations:
            if op == "out":
                try:
                    space.out(tup)
                    shadow.append(tup)
                except TupleSpaceFullError:
                    pass
                except Exception:
                    continue  # template insert rejected
            elif op == "inp":
                removed = space.inp(tup)
                if removed is not None:
                    shadow.remove(removed)
            elif op == "rdp":
                space.rdp(tup)
            else:
                space.count(tup)
            # Invariants after every operation:
            assert space.used_bytes == sum(t.wire_size for t in shadow)
            assert 0 <= space.used_bytes <= space.capacity
            assert space.tuples() == shadow

    @given(small_tuples())
    def test_out_then_inp_round_trips(self, tup):
        if tup.is_template:
            return
        space = TupleSpace()
        space.out(tup)
        assert space.inp(tup) == tup
        assert len(space) == 0

    @given(st.lists(small_tuples().filter(lambda t: not t.is_template), max_size=8))
    def test_count_equals_matching_scan(self, tuples):
        space = TupleSpace(capacity=600)
        stored = []
        for tup in tuples:
            try:
                space.out(tup)
                stored.append(tup)
            except TupleSpaceFullError:
                break
        for tup in stored:
            expected = sum(1 for t in stored if tup.matches(t))
            assert space.count(tup) == expected


# ----------------------------------------------------------------------
# Assembler round trip
# ----------------------------------------------------------------------
simple_instructions = st.sampled_from(
    ["nop", "pop", "copy", "add", "halt", "loc", "aid", "wait", "out", "inp"]
)
operand_lines = st.one_of(
    st.integers(min_value=0, max_value=255).map(lambda v: f"pushc {v}"),
    st.integers(min_value=-32768, max_value=32767).map(lambda v: f"pushcl {v}"),
    packable_text.filter(lambda t: t).map(lambda t: f"pushn {t}"),
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
    ).map(lambda p: f"pushloc {p[0]} {p[1]}"),
    st.integers(min_value=0, max_value=11).map(lambda v: f"getvar {v}"),
)


class TestAssemblerProperties:
    @given(st.lists(st.one_of(simple_instructions, operand_lines), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_assemble_disassemble_round_trips(self, lines):
        program = assemble("\n".join(lines))
        recovered = disassemble(program.code)
        assert assemble("\n".join(recovered)).code == program.code


# ----------------------------------------------------------------------
# Adaptive neighborhoods: acquaintance lists converge to radio ground truth
# ----------------------------------------------------------------------
#: Beacon period and expiry for the convergence proof (µs / intervals).
_PERIOD = seconds(2.0)
_K = 3
#: Beacon jitter stretches an interval to at most 1.25 × the period, so
#: ``k + 1`` *intervals* of quiescence bound both directions: a live
#: neighbor beacons at least once, and a silent entry crosses the ``k``
#: period staleness horizon and meets an evicting beat.
_QUIESCENCE_S = (_K + 1) * 1.25 * _PERIOD / 1_000_000 + 0.5

#: Field geometry: a 3×3 grid at 1 m spacing, 2.2 m radio range, nodes
#: shuffled among integer slots in [0, 4]² by the interleaving.
_SLOTS = 5

churn_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("move"),
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=0, max_value=_SLOTS - 1),
            st.integers(min_value=0, max_value=_SLOTS - 1),
        ),
        st.tuples(st.just("fail"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("recover"), st.integers(min_value=0, max_value=8)),
    ),
    min_size=0,
    max_size=14,
)


class TestAdaptiveConvergenceProperty:
    """PR 4's acceptance property, mirroring PR 2's incremental-index proof:
    under *any* interleaving of moves, failures, and recoveries, every live
    node's acquaintance list converges to the channel's ground-truth
    in-range set — membership *and* positions — within ``k + 1`` beacon
    intervals of quiescence."""

    def _deploy(self):
        net = SensorNetwork(
            GridTopology(3, 3),
            seed=3,
            base_station=False,
            physical=True,
            spacing_m=1.0,
            link_model=PerfectLinks(range_m=2.2),
            beacon_period=_PERIOD,
            adaptive=True,
            beacon_expiry_intervals=_K,
        )
        # The property under proof is *list maintenance*, not MAC luck: a
        # hidden-terminal collision (two mutually inaudible beacons
        # overlapping at a common receiver) can eat one beacon and is
        # physically legitimate — but it makes the k+1 bound probabilistic.
        # Shrinking airtime 1000× makes such overlap measure-zero while
        # leaving scheduling, jitter, expiry, and re-announcement untouched;
        # k = 3 additionally tolerates any single lost beacon.
        net.channel.bitrate *= 1000
        return net

    @given(churn_ops)
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_lists_converge_to_in_range_ground_truth(self, operations):
        net = self._deploy()
        addresses = sorted(net.topology.locations())
        for op in operations:
            address = addresses[op[1]]
            if op[0] == "move":
                net.move_node(address, (float(op[2]), float(op[3])))
            elif op[0] == "fail":
                net.fail_node(address)
            elif op[0] == "recover":
                net.recover_node(address)
            net.run(0.4)  # interleave the churn in simulated time
        net.run(_QUIESCENCE_S)  # quiescence: k + 1 beacon intervals

        channel = net.channel
        in_range = channel.link_model.in_range
        radios = {address: channel.radio_for(net.topology.mote_id(address)) for address in addresses}
        for address, radio in radios.items():
            if not radio.enabled:
                continue  # a dark node heard nothing; its list is frozen
            expected = {
                other.mote.id: other.mote.location
                for other_address, other in radios.items()
                if other is not radio
                and other.enabled
                and in_range(other.position, radio.position)
            }
            acquaintances = net.nodes[address].beacons.acquaintances
            actual = {
                entry.mote_id: entry.location for entry in acquaintances.neighbors()
            }
            assert actual == expected, f"node {address} diverged from ground truth"


# ----------------------------------------------------------------------
# Delivery path: cached/batched fan-out == the naive per-frame reference
# ----------------------------------------------------------------------
from repro.mote import Environment, Mote  # noqa: E402
from repro.radio import Channel, Frame, UniformLossLinks  # noqa: E402
from repro.sim.units import ms  # noqa: E402


class _NaiveChannel(Channel):
    """The pre-cache, pre-batching reference: every frame recomputes each
    receiver's PRR from the link model, rediscovers its overlap set from a
    full transmission log, and resolves reception inline, one receiver at a
    time — the PR 3 delivery loop, verbatim in spirit."""

    def begin_transmission(self, tx) -> None:
        history = getattr(self, "_history", None)
        if history is None:
            history = self._history = []
        history.append(tx)
        super().begin_transmission(tx)

    def end_transmission(self, tx) -> None:
        self._on_air.remove(tx)
        start, end = tx.start, tx.end
        overlapping = None
        for other in self._history:
            if (
                other is not tx
                and other.radio is not tx.radio
                and other.start < end
                and other.end > start
            ):
                other_id = other.radio.mote.id
                if other_id not in self._hearer_ids:
                    self.hearers(other.radio)
                if overlapping is None:
                    overlapping = []
                overlapping.append((other.radio, self._hearer_ids[other_id]))
        tx_id = tx.radio.mote.id
        tx_position = tx.radio.position
        overrides = self.prr_overrides
        link_prr = self._link_model.prr
        random = self.rng.random
        for radio in self.hearers(tx.radio):
            if not radio._enabled:
                continue
            receiver_tx = radio._current_tx
            if receiver_tx is not None and receiver_tx.start < end and receiver_tx.end > start:
                continue
            if overlapping is not None:
                # The receiver's own (already finished) transmission corrupts
                # the frame too: half-duplex, and a radio always hears itself.
                receiver_id = radio.mote.id
                if any(
                    other_radio is radio or receiver_id in audible_ids
                    for other_radio, audible_ids in overlapping
                ):
                    self.collisions += 1
                    continue
            prr = overrides.get((tx_id, radio.mote.id)) if overrides else None
            if prr is None:
                prr = link_prr(tx_position, radio.position)
            if random() >= prr:
                self.prr_drops += 1
                continue
            radio.deliver(tx.frame)


_N_RADIOS = 6
_PRR_CHOICES = (0.0, 0.4, 1.0)

delivery_ops = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(0, _N_RADIOS - 1), st.integers(0, 255)),
        st.tuples(
            st.just("move"),
            st.integers(0, _N_RADIOS - 1),
            st.integers(0, 8),
            st.integers(0, 8),
        ),
        st.tuples(st.just("detach"), st.integers(0, _N_RADIOS - 1)),
        st.tuples(st.just("fail"), st.integers(0, _N_RADIOS - 1)),
        st.tuples(st.just("recover"), st.integers(0, _N_RADIOS - 1)),
        st.tuples(
            st.just("override"),
            st.integers(0, _N_RADIOS - 1),
            st.integers(0, _N_RADIOS - 1),
            st.integers(0, len(_PRR_CHOICES) - 1),
        ),
        st.tuples(
            st.just("clear"), st.integers(0, _N_RADIOS - 1), st.integers(0, _N_RADIOS - 1)
        ),
        st.tuples(st.just("run"), st.integers(1, 60)),
    ),
    min_size=0,
    max_size=40,
)


class TestDeliveryEquivalenceProperty:
    """PR 5's acceptance property, mirroring PR 2's incremental-index proof:
    under *any* interleaving of sends, moves, detaches, and PRR-override
    churn, the memoized-cache + batched-fan-out delivery path produces the
    same frames at the same receivers — frame for frame, drop for drop —
    as a naive reference that rederives every link decision per frame."""

    def _deploy(self, channel_cls, seed):
        sim = Simulator(seed=seed)
        channel = channel_cls(
            sim, UniformLossLinks(prr=0.8, range_m=3.5), grid_spacing_m=1.0
        )
        log: list[tuple[int, int, bytes]] = []
        radios = []
        for index in range(_N_RADIOS):
            mote = Mote(sim, index + 1, Location(index % 3, index // 3), Environment())
            radio = channel.attach(mote)
            radio.set_receive_callback(
                lambda frame, me=index: log.append((me, frame.src, frame.payload))
            )
            radios.append(radio)
        return sim, channel, radios, log

    @staticmethod
    def _naive_busy(channel, radio):
        """Carrier sense from first principles: walk every airborne
        transmission and test audibility straight off the link model —
        no hearer caches, no audible-slot arrays, no early exits."""
        now = channel.sim.now
        in_range = channel._link_model.in_range
        busy = False
        for tx in channel._on_air:
            if tx.radio is radio or not (tx.start <= now < tx.end):
                continue
            if in_range(tx.radio.position, radio.position):
                busy = True
        return busy

    def _assert_sense_consistent(self, channel, radios, detached):
        """Both ``busy_for`` dispatch arms must agree with the naive
        reference for every attached radio.  ``busy_for`` consumes no RNG,
        so interrogating it mid-run cannot perturb the delivery stream the
        enclosing equivalence property is checking."""
        saved = channel.vector_sense_min
        for index, radio in enumerate(radios):
            if index in detached:
                continue
            naive = self._naive_busy(channel, radio)
            channel.vector_sense_min = 1  # force the audible-slot gather
            assert channel.busy_for(radio) == naive
            channel.vector_sense_min = len(channel._on_air) + 1  # force scalar
            assert channel.busy_for(radio) == naive
        channel.vector_sense_min = saved

    def _drive(self, channel_cls, operations, seed, vector_min=None, sense_check=False):
        sim, channel, radios, log = self._deploy(channel_cls, seed)
        if vector_min is not None:
            channel.vector_fanout_min = vector_min
        detached: set[int] = set()
        for op in operations:
            kind, *args = op
            if kind == "send":
                index, payload = args
                radio = radios[index]
                if index in detached or radio.sending:
                    continue
                radio.send(Frame(index + 1, 0xFFFF, 0x10, bytes([payload])))
            elif kind == "move":
                index, x, y = args
                if index in detached:
                    continue
                channel.move(index + 1, (float(x), float(y)))
            elif kind == "detach":
                (index,) = args
                if index in detached:
                    continue
                detached.add(index)
                channel.detach(index + 1)
            elif kind == "fail":
                (index,) = args
                if index not in detached:
                    radios[index].enabled = False
            elif kind == "recover":
                (index,) = args
                if index not in detached:
                    radios[index].enabled = True
            elif kind == "override":
                src, dst, choice = args
                channel.prr_overrides[(src + 1, dst + 1)] = _PRR_CHOICES[choice]
            elif kind == "clear":
                src, dst = args
                channel.prr_overrides.pop((src + 1, dst + 1), None)
            else:
                sim.run(duration=ms(args[0]))
            if sense_check:
                self._assert_sense_consistent(channel, radios, detached)
        sim.run_until_idle()
        if sense_check:
            self._assert_sense_consistent(channel, radios, detached)
        return (
            log,
            channel.frames_transmitted,
            channel.prr_drops,
            channel.collisions,
            channel.mac_giveups,
        )

    @given(delivery_ops, st.integers(0, 7))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_cached_batched_delivery_matches_naive_reference(self, operations, seed):
        optimized = self._drive(Channel, operations, seed)
        reference = self._drive(_NaiveChannel, operations, seed)
        assert optimized == reference

    @given(delivery_ops, st.integers(0, 7))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_vectorized_delivery_matches_naive_reference(self, operations, seed):
        """PR 6's extension: force *every* fan-out down the vectorized field
        path (threshold 1) and require the same frames, drops, collisions,
        and RNG-stream consumption as the naive per-frame reference — which
        also proves vector and scalar paths are interchangeable mid-run."""
        vectorized = self._drive(Channel, operations, seed, vector_min=1)
        reference = self._drive(_NaiveChannel, operations, seed)
        assert vectorized == reference

    @given(delivery_ops, st.integers(0, 7))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_carrier_sense_paths_match_naive_reference(self, operations, seed):
        """PR 10's extension: after *every* operation, both ``busy_for``
        dispatch arms (audible-slot gather and scalar on-air scan) must
        agree with a naive walk over the airborne transmissions — and the
        interrogation must not disturb the delivery equivalence, since
        carrier sense never consumes RNG."""
        checked = self._drive(Channel, operations, seed, vector_min=1, sense_check=True)
        reference = self._drive(_NaiveChannel, operations, seed)
        assert checked == reference


# ----------------------------------------------------------------------
# Event kernel determinism
# ----------------------------------------------------------------------
class TestKernelProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=30))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
